"""`repro serve`: the asyncio HTTP/JSON synthesis service.

Stdlib-only (``asyncio.start_server`` + hand-rolled HTTP/1.1: the
container has no aiohttp, and four endpoints do not need one).  The
server composes the durable pieces:

- :class:`~repro.serve.store.JobStore` — every lifecycle transition
  committed before it is acknowledged, so ``kill -9`` + restart
  resumes the queue exactly;
- :class:`~repro.serve.runner.JobRunner` — pool execution with
  timeouts and broken-pool rebuild;
- :class:`~repro.resilience.pool.RetryPolicy` — jittered, seeded
  backoff between retry attempts of transiently-failed jobs;
- admission control — bounded queue depth and per-client concurrency
  caps answered with ``429`` + ``Retry-After`` (dedup'd submissions
  bypass the depth check: they cost a row, not an execution);
- graceful drain — ``SIGTERM``/``SIGINT`` stop admissions (``503``),
  let running jobs finish inside a grace window, and leave the
  ``SUBMITTED`` queue durable for the next boot.

Endpoints (all JSON)::

    POST /jobs            {"kind", "params", "client"} -> 200/202/400/429/503
    GET  /jobs            every job (compact)
    GET  /jobs/<id>       one job, result included
    GET  /stats           store counters + runner + server counters
    GET  /healthz         {"status": "ok"|"draining"}
    POST /drain           begin a graceful drain (also wired to signals)

Every request runs inside an observability span (``serve/<METHOD>
<route>``), so ``repro.obs`` tooling sees serving work the same way it
sees synthesis passes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.errors import JobError
from repro.obs.spans import span
from repro.resilience.pool import RetryPolicy
from repro.serve import jobs as jobmodel
from repro.serve.jobs import (
    DONE,
    SUBMITTED,
    Job,
    canonical_params,
    classify_failure,
    job_key,
)
from repro.serve.runner import JobRunner
from repro.serve.store import JobStore

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: largest request body the server will read
MAX_BODY = 1 << 20


class ServerConfig:
    """Knobs for one :class:`JobServer` (plain data, CLI-mappable)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        executor: str = "thread",
        queue_depth: int = 64,
        client_cap: int = 8,
        job_timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        drain_grace: float = 30.0,
        chaos=None,
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.executor = executor
        self.queue_depth = queue_depth
        self.client_cap = client_cap
        self.job_timeout = job_timeout
        self.policy = policy or RetryPolicy()
        self.drain_grace = drain_grace
        #: optional :class:`repro.serve.chaos.ServeFaultPlan`
        self.chaos = chaos


class JobServer:
    """One serving instance over one store path."""

    def __init__(self, store_path, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.store_path = store_path
        self.store: Optional[JobStore] = None
        self.runner: Optional[JobRunner] = None
        self.draining = False
        self.port: Optional[int] = None
        self.recovered_jobs = 0
        self.request_count = 0
        self.shed_count = 0
        self.dropped_connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._inflight: Dict[str, asyncio.Task] = {}
        self._closing = False
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.store = JobStore(self.store_path)
        self.recovered_jobs = self.store.recover()
        self.runner = JobRunner(
            workers=self.config.workers, executor=self.config.executor
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain``, let running jobs finish first."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._inflight:
            pending = [task for task in self._inflight.values() if not task.done()]
            if pending:
                await asyncio.wait(
                    pending, timeout=self.config.drain_grace
                )
        if self._dispatcher is not None:
            # flag + wake, not bare cancel(): under 3.11's wait_for a
            # cancellation arriving during timeout handling can be
            # swallowed as TimeoutError, losing the one-shot cancel and
            # wedging the await below forever
            self._closing = True
            self._wake.set()
            try:
                await asyncio.wait_for(self._dispatcher, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._dispatcher.cancel()
        for task in self._inflight.values():
            task.cancel()
        if self.runner is not None:
            self.runner.shutdown(wait=drain)
        if self.store is not None:
            self.store.close()
        self._stopped.set()

    def begin_drain(self) -> None:
        """Signal-handler entry: stop admitting, schedule the stop."""
        if self.draining:
            return
        self.draining = True
        asyncio.get_event_loop().create_task(self.stop(drain=True))

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while not self._closing:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            if self._closing:
                return
            if self.draining:
                continue  # running jobs finish; the queue stays durable
            self._reap_inflight()
            while len(self._inflight) < self.config.workers:
                job = self.store.next_pending(exclude=tuple(self._inflight))
                if job is None:
                    break
                if not self.store.claim(job.job_id):
                    continue
                self._inflight[job.job_id] = asyncio.create_task(
                    self._run_job(job)
                )

    def _reap_inflight(self) -> None:
        for job_id in [jid for jid, task in self._inflight.items() if task.done()]:
            del self._inflight[job_id]

    async def _run_job(self, job: Job) -> None:
        try:
            with span(f"serve/job {job.kind}", job_id=job.job_id, attempt=job.attempts):
                result = await self.runner.execute(
                    job.kind, job.params, timeout=self.config.job_timeout
                )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 — classified below
            state, exit_class, retryable = classify_failure(exc)
            attempt = self.store.get(job.job_id).attempts
            if retryable and attempt <= self.config.policy.max_retries:
                delay = self.config.policy.delay(attempt - 1)
                await asyncio.sleep(delay)
                self.store.release_for_retry(job.job_id, error=str(exc))
            else:
                self.store.fail(job.job_id, str(exc), exit_class, state=state)
        else:
            self.store.finish(job.job_id, result)
        finally:
            self._wake.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader, writer)
            if status is None:  # chaos drop: close without answering
                return
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            reason = _REASONS.get(status, "?")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
            if status in (429, 503):
                head += "Retry-After: 1\r\n"
            head += "Connection: close\r\n\r\n"
            writer.write(head.encode("utf-8") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Tuple[Optional[int], Optional[dict]]:
        try:
            request_line = await reader.readline()
            method, target, _version = request_line.decode("latin-1").split(" ", 2)
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "malformed request line"}
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad content-length"}
        if content_length > MAX_BODY:
            return 413, {"error": "request body too large"}
        body = await reader.readexactly(content_length) if content_length else b""

        self.request_count += 1
        chaos = self.config.chaos
        if chaos is not None:
            action = chaos.request_action(self.request_count)
            if action is not None:
                kind, amount = action
                if kind == "delay":
                    await asyncio.sleep(amount)
                elif kind == "drop":
                    self.dropped_connections += 1
                    return None, None

        with span(f"serve/{method} {target.split('?')[0]}"):
            return self._route(method, target, body)

    def _route(self, method: str, target: str, body: bytes) -> Tuple[int, dict]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "draining" if self.draining else "ok",
                "recovered_jobs": self.recovered_jobs,
            }
        if path == "/stats" and method == "GET":
            return 200, self.stats()
        if path == "/jobs" and method == "GET":
            return 200, {
                "jobs": [job.to_dict(include_result=False) for job in self.store.jobs()]
            }
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/") and method == "GET":
            job = self.store.get(path[len("/jobs/"):])
            if job is None:
                return 404, {"error": "no such job"}
            return 200, {"job": job.to_dict()}
        if path == "/drain" and method == "POST":
            self.begin_drain()
            return 200, {"status": "draining"}
        if path in ("/healthz", "/stats", "/jobs", "/drain"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no route for {path}"}

    def _submit(self, body: bytes) -> Tuple[int, dict]:
        if self.draining:
            return 503, {"error": "server is draining; resubmit elsewhere"}
        try:
            request = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(request, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad request body: {exc}"}
        kind = request.get("kind", "")
        client = str(request.get("client", ""))
        try:
            canon = canonical_params(kind, request.get("params"))
            key = job_key(kind, canon)
        except JobError as exc:
            return 400, {"error": str(exc), "exit_class": "fatal"}

        # admission control: dedup'd submissions are always welcome
        # (they hit the cache, not the CPU); fresh work is bounded
        if not self.store.would_dedup(key):
            if self.store.queue_depth() >= self.config.queue_depth:
                self.shed_count += 1
                return 429, {"error": "queue full", "queue_depth": self.config.queue_depth}
            if client and self.store.client_load(client) >= self.config.client_cap:
                self.shed_count += 1
                return 429, {
                    "error": f"client {client!r} at its concurrency cap",
                    "client_cap": self.config.client_cap,
                }

        job, dedup = self.store.submit(kind, canon, key, client=client)
        self._wake.set()
        status = 200 if job.state == DONE else 202
        return status, {"job": job.to_dict(include_result=job.state == DONE)}

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        stats = {
            "store": self.store.stats(),
            "runner": self.runner.stats(),
            "server": {
                "requests": self.request_count,
                "shed": self.shed_count,
                "dropped_connections": self.dropped_connections,
                "draining": self.draining,
                "recovered_jobs": self.recovered_jobs,
                "inflight": len(self._inflight),
            },
        }
        return stats


async def serve_forever(store_path, config: ServerConfig) -> JobServer:
    """CLI entry: start, wire signals, park until drained."""
    import signal

    server = JobServer(store_path, config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.begin_drain)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loop: ctrl-C still raises KeyboardInterrupt
    print(
        f"repro serve: listening on http://{server.config.host}:{server.port} "
        f"(store {server.store_path}, {server.config.workers} "
        f"{server.config.executor} workers, queue depth "
        f"{server.config.queue_depth}"
        + (f", recovered {server.recovered_jobs} jobs" if server.recovered_jobs else "")
        + ")",
        flush=True,
    )
    await server.wait_stopped()
    return server
