"""The durable job store: SQLite WAL, crash-exact, dedup-aware.

Every lifecycle transition is one committed transaction, so the store
is the journal: ``kill -9`` the server at any instant and the next
:meth:`JobStore.recover` reconstructs exactly which jobs were queued,
which were mid-flight (they return to the queue and re-execute — job
execution is deterministic, so the resumed results are byte-identical)
and which already finished.  This is §17's journal-replay discipline
with SQLite doing the torn-line handling for us.

Invariants the chaos drill pins down:

- **Exactly-once terminal transitions.**  ``finish``/``fail`` only
  transition jobs out of ``RUNNING`` (guarded ``UPDATE ... WHERE
  state = 'RUNNING'``); a late result for a job someone else already
  resolved is counted in ``ignored_results`` and dropped, never
  double-applied.
- **Dedup by content key.**  A submission whose key matches a cached
  result is answered ``DONE`` immediately (``dedup_hits``); one that
  matches a queued/running job *coalesces* onto it — same ``job_id``
  back, one execution for any number of identical submissions.
- **Quarantine, not crash.**  A database SQLite cannot open is renamed
  ``.corrupt-<ts>`` (fresh store, loud warning) — the
  :mod:`repro.cache.sqlstore` semantics.  A corrupt *row* (result or
  params text that no longer parses) is healed: the result-cache row
  is deleted, the job is returned to ``SUBMITTED``, and the
  deterministic pipeline recomputes the identical result
  (``quarantined_rows`` counts the healings).
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.sqlstore import connect_wal, quarantine_database
from repro.serve.jobs import (
    DONE,
    FAILED,
    RUNNING,
    SUBMITTED,
    TERMINAL_STATES,
    Job,
    canonical_json,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (name TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS jobs (
    job_id      TEXT PRIMARY KEY,
    key         TEXT NOT NULL,
    kind        TEXT NOT NULL,
    params      TEXT NOT NULL,
    client      TEXT NOT NULL DEFAULT '',
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    result      TEXT,
    error       TEXT NOT NULL DEFAULT '',
    exit_class  TEXT NOT NULL DEFAULT '',
    dedup       INTEGER NOT NULL DEFAULT 0,
    created_at  REAL NOT NULL,
    started_at  REAL NOT NULL DEFAULT 0,
    finished_at REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_by_key ON jobs (key);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
CREATE TABLE IF NOT EXISTS results (key TEXT PRIMARY KEY, record TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS counters (name TEXT PRIMARY KEY, value INTEGER NOT NULL);
"""

_FORMAT_VERSION = "1"

#: counters the store maintains transactionally
COUNTER_NAMES = (
    "submissions",
    "dedup_hits",
    "executions",
    "retries",
    "recovered",
    "ignored_results",
    "quarantined_rows",
)


class JobStore:
    """One SQLite database holding jobs, cached results and counters."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError as exc:
            quarantine_database(self.path, f"cannot open: {exc}")
            self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        conn = connect_wal(self.path)
        try:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO meta (name, value) VALUES ('version', ?)",
                (_FORMAT_VERSION,),
            )
            conn.executemany(
                "INSERT OR IGNORE INTO counters (name, value) VALUES (?, 0)",
                [(name,) for name in COUNTER_NAMES],
            )
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:
            pass

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        self._conn.execute(
            "UPDATE counters SET value = value + ? WHERE name = ?", (amount, name)
        )

    def _next_job_id(self) -> str:
        row = self._conn.execute(
            "SELECT value FROM counters WHERE name = 'submissions'"
        ).fetchone()
        return f"j{int(row[0]):06d}"

    @staticmethod
    def _job_from_row(row: sqlite3.Row) -> Job:
        params = json.loads(row["params"])
        result = json.loads(row["result"]) if row["result"] else None
        return Job(
            job_id=row["job_id"],
            key=row["key"],
            kind=row["kind"],
            params=params,
            client=row["client"],
            state=row["state"],
            attempts=row["attempts"],
            result=result,
            error=row["error"],
            exit_class=row["exit_class"],
            dedup=bool(row["dedup"]),
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
        )

    def _select_job(self, job_id: str) -> Optional[sqlite3.Row]:
        self._conn.row_factory = sqlite3.Row
        return self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()

    # ------------------------------------------------------------------
    # submission + dedup
    # ------------------------------------------------------------------
    def submit(
        self, kind: str, params: dict, key: str, client: str = ""
    ) -> Tuple[Job, bool]:
        """Record one submission; returns ``(job, deduplicated)``.

        Dedup order: a cached result answers immediately (a new ``DONE``
        job row, so per-client audit still sees the request); a live
        job with the same key coalesces (the existing job is returned).
        Otherwise a fresh ``SUBMITTED`` row joins the queue.
        """
        now = time.time()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._bump("submissions")
            cached = self._cached_result(key)
            if cached is not None:
                job_id = self._next_job_id()
                self._bump("dedup_hits")
                self._conn.execute(
                    "INSERT INTO jobs (job_id, key, kind, params, client, state,"
                    " attempts, result, exit_class, dedup, created_at, finished_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, 0, ?, 'ok', 1, ?, ?)",
                    (job_id, key, kind, canonical_json(params), client, DONE,
                     cached, now, now),
                )
                self._conn.execute("COMMIT")
            else:
                live = self._conn.execute(
                    "SELECT job_id FROM jobs WHERE key = ? AND state IN (?, ?) "
                    "ORDER BY rowid LIMIT 1",
                    (key, SUBMITTED, RUNNING),
                ).fetchone()
                if live is not None:
                    self._bump("dedup_hits")
                    job_id = live[0]
                    self._conn.execute("COMMIT")
                    job = self.get(job_id)
                    job.dedup = True
                    return job, True
                job_id = self._next_job_id()
                self._conn.execute(
                    "INSERT INTO jobs (job_id, key, kind, params, client, state,"
                    " created_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (job_id, key, kind, canonical_json(params), client, SUBMITTED, now),
                )
                self._conn.execute("COMMIT")
        except BaseException:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        job = self.get(job_id)
        return job, bool(job and job.dedup)

    def _cached_result(self, key: str) -> Optional[str]:
        """The cached canonical result text for ``key``, quarantining a
        row whose text no longer parses (returns ``None`` → re-execute).
        Must run inside the caller's transaction."""
        row = self._conn.execute(
            "SELECT record FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            record = json.loads(row[0])
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except ValueError:
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._bump("quarantined_rows")
            return None
        return row[0]

    def would_dedup(self, key: str) -> bool:
        """Whether a submission of ``key`` costs no new execution —
        dedup'd submissions are admitted even when the queue is full
        (they hit the cache, not the CPU)."""
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ? "
            "UNION ALL SELECT 1 FROM jobs WHERE key = ? AND state IN (?, ?) LIMIT 1",
            (key, key, SUBMITTED, RUNNING),
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # lifecycle transitions (each one guarded + committed)
    # ------------------------------------------------------------------
    def claim(self, job_id: str) -> bool:
        """SUBMITTED -> RUNNING; False when someone else already did."""
        self._conn.execute("BEGIN IMMEDIATE")
        changed = self._conn.execute(
            "UPDATE jobs SET state = ?, attempts = attempts + 1, started_at = ? "
            "WHERE job_id = ? AND state = ?",
            (RUNNING, time.time(), job_id, SUBMITTED),
        ).rowcount
        if changed:
            self._bump("executions")
        self._conn.execute("COMMIT")
        return bool(changed)

    def finish(self, job_id: str, result: dict) -> bool:
        """RUNNING -> DONE, result cached under the job's key.

        Returns ``False`` (and counts ``ignored_results``) when the job
        is not ``RUNNING`` anymore — the late-result guard that makes
        double-execution observable instead of silent.
        """
        text = canonical_json(result)
        self._conn.execute("BEGIN IMMEDIATE")
        row = self._conn.execute(
            "SELECT key FROM jobs WHERE job_id = ? AND state = ?", (job_id, RUNNING)
        ).fetchone()
        if row is None:
            self._bump("ignored_results")
            self._conn.execute("COMMIT")
            return False
        self._conn.execute(
            "UPDATE jobs SET state = ?, result = ?, exit_class = 'ok', "
            "finished_at = ? WHERE job_id = ?",
            (DONE, text, time.time(), job_id),
        )
        self._conn.execute(
            "INSERT OR REPLACE INTO results (key, record) VALUES (?, ?)",
            (row[0], text),
        )
        self._conn.execute("COMMIT")
        return True

    def fail(
        self, job_id: str, error: str, exit_class: str, state: str = FAILED
    ) -> bool:
        """RUNNING -> FAILED/TIMED_OUT (terminal), with taxonomy stamp."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"fail() needs a terminal state, got {state!r}")
        self._conn.execute("BEGIN IMMEDIATE")
        changed = self._conn.execute(
            "UPDATE jobs SET state = ?, error = ?, exit_class = ?, finished_at = ? "
            "WHERE job_id = ? AND state = ?",
            (state, error, exit_class, time.time(), job_id, RUNNING),
        ).rowcount
        if not changed:
            self._bump("ignored_results")
        self._conn.execute("COMMIT")
        return bool(changed)

    def release_for_retry(self, job_id: str, error: str = "") -> bool:
        """RUNNING -> SUBMITTED (transient failure; budget tracked via
        ``attempts``, which ``claim`` will bump again)."""
        self._conn.execute("BEGIN IMMEDIATE")
        changed = self._conn.execute(
            "UPDATE jobs SET state = ?, error = ? WHERE job_id = ? AND state = ?",
            (SUBMITTED, error, job_id, RUNNING),
        ).rowcount
        if changed:
            self._bump("retries")
        self._conn.execute("COMMIT")
        return bool(changed)

    def recover(self) -> int:
        """Return crashed-mid-flight jobs to the queue (startup).

        Any ``RUNNING`` row at open time is a job whose server died
        with it: nothing else writes ``RUNNING``.  Attempts are
        preserved, so a job that was already on its last retry cannot
        crash-loop forever.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        recovered = self._conn.execute(
            "UPDATE jobs SET state = ? WHERE state = ?", (SUBMITTED, RUNNING)
        ).rowcount
        if recovered:
            self._bump("recovered", recovered)
        self._conn.execute("COMMIT")
        return recovered

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """Fetch one job, healing a corrupt stored row on the way.

        A ``DONE`` row whose result text was scribbled on is returned
        to ``SUBMITTED`` (and its result-cache row dropped) so the
        deterministic pipeline recomputes it — the caller just sees a
        job that is not finished yet.
        """
        row = self._select_job(job_id)
        if row is None:
            return None
        try:
            return self._job_from_row(row)
        except ValueError:
            pass
        # corrupt params or result text: heal what is healable
        self._conn.execute("BEGIN IMMEDIATE")
        self._bump("quarantined_rows")
        self._conn.execute("DELETE FROM results WHERE key = ?", (row["key"],))
        self._conn.execute(
            "UPDATE jobs SET state = ?, result = NULL, exit_class = '' "
            "WHERE job_id = ?",
            (SUBMITTED, job_id),
        )
        self._conn.execute("COMMIT")
        healed = self._select_job(job_id)
        try:
            return self._job_from_row(healed)
        except ValueError:
            # params themselves are torn: the job cannot be re-run
            self._conn.execute("BEGIN IMMEDIATE")
            self._conn.execute(
                "UPDATE jobs SET state = ?, params = '{}', error = ?, "
                "exit_class = 'fatal' WHERE job_id = ?",
                (FAILED, "stored parameters corrupted beyond recovery", job_id),
            )
            self._conn.execute("COMMIT")
            return self._job_from_row(self._select_job(job_id))

    def next_pending(self, exclude: Sequence[str] = ()) -> Optional[Job]:
        """Oldest ``SUBMITTED`` job not in ``exclude`` (FIFO dispatch)."""
        self._conn.row_factory = sqlite3.Row
        exclude = tuple(exclude)
        placeholders = ",".join("?" for _ in exclude)
        clause = f"AND job_id NOT IN ({placeholders})" if exclude else ""
        row = self._conn.execute(
            f"SELECT * FROM jobs WHERE state = ? {clause} ORDER BY rowid LIMIT 1",
            (SUBMITTED, *exclude),
        ).fetchone()
        return self._job_from_row(row) if row is not None else None

    def jobs(self, client: Optional[str] = None) -> List[Job]:
        self._conn.row_factory = sqlite3.Row
        if client is None:
            rows = self._conn.execute("SELECT * FROM jobs ORDER BY rowid").fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE client = ? ORDER BY rowid", (client,)
            ).fetchall()
        return [self._job_from_row(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in ("SUBMITTED", "RUNNING", "DONE", "FAILED", "TIMED_OUT")}
        for state, count in self._conn.execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            out[state] = count
        return out

    def queue_depth(self) -> int:
        """Jobs admitted but not yet terminal (the backpressure gauge)."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?)", (SUBMITTED, RUNNING)
        ).fetchone()
        return int(row[0])

    def client_load(self, client: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE client = ? AND state IN (?, ?)",
            (client, SUBMITTED, RUNNING),
        ).fetchone()
        return int(row[0])

    def counters(self) -> Dict[str, int]:
        return {
            name: int(value)
            for name, value in self._conn.execute("SELECT name, value FROM counters")
        }

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = dict(self.counters())
        stats["states"] = self.counts()
        stats["queue_depth"] = self.queue_depth()
        submissions = stats.get("submissions", 0)
        stats["dedup_hit_rate"] = (
            round(stats.get("dedup_hits", 0) / submissions, 4) if submissions else 0.0
        )
        return stats

    # ------------------------------------------------------------------
    # chaos helpers (tests + drills only)
    # ------------------------------------------------------------------
    def corrupt_result_row(self, key: str, garbage: str = '{"torn') -> bool:
        """Scribble over a cached result row (chaos drills)."""
        self._conn.execute("BEGIN IMMEDIATE")
        changed = self._conn.execute(
            "UPDATE results SET record = ? WHERE key = ?", (garbage, key)
        ).rowcount
        changed += self._conn.execute(
            "UPDATE jobs SET result = ? WHERE key = ? AND state = ?",
            (garbage, key, DONE),
        ).rowcount
        self._conn.execute("COMMIT")
        return bool(changed)
