"""Job model for the synthesis service: kinds, keys, execution.

A *job* is one unit of pipeline work a client can submit over HTTP —
``synthesize``, ``verify``, ``explore`` or ``faults`` — described
entirely by a JSON parameter object.  Three properties make the
serving layer's crash-safety story work:

- **Canonical parameters.**  :func:`canonical_params` validates a
  submission against the kind's schema (unknown kinds, workloads or
  parameter names are :class:`~repro.errors.JobError`, the ``fatal``
  exit class — retrying can never help) and fills every default, so
  two requests that mean the same thing become byte-identical
  parameter objects.
- **Content-addressed keys.**  :func:`job_key` fingerprints the kind,
  the canonical parameters *and the workload's CDFG* (via
  :func:`repro.cache.fingerprint.fingerprint_cdfg`), so a million
  identical submissions share one key — the store deduplicates them
  against a single execution — while any change to the workload
  definition changes the key and can never be served a stale result.
- **Deterministic execution.**  :func:`execute_job` is a pure function
  of the canonical parameters (seeded campaigns, nominal simulations),
  so a retry after a worker crash, or a re-execution after a
  quarantined store row, reproduces the original result byte for byte.

The ``_chaos`` parameter is the fault-injection side channel used by
the chaos harness (:mod:`repro.serve.chaos`): it is **excluded from
the job key** (a chaos-wrapped job is semantically the same job) and
interpreted at execution time — sleep, die once, raise once —
mirroring :class:`repro.resilience.injection.ConfigFaultInjector`'s
only-kill-real-workers discipline.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.cache.fingerprint import fingerprint_cdfg, stable_digest
from repro.errors import JobError, ReproError

# ----------------------------------------------------------------------
# Lifecycle states
# ----------------------------------------------------------------------
SUBMITTED = "SUBMITTED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
TIMED_OUT = "TIMED_OUT"

#: every state a job can be in, in lifecycle order
STATES = (SUBMITTED, RUNNING, DONE, FAILED, TIMED_OUT)
#: states a job never leaves (except store-corruption healing)
TERMINAL_STATES = (DONE, FAILED, TIMED_OUT)

#: kind -> {param: default} (None = required)
JOB_SCHEMAS: Dict[str, Dict[str, object]] = {
    "synthesize": {"workload": None, "level": "gt+lt"},
    "verify": {"workload": None, "runs": 5, "seed": 0},
    "explore": {"workload": None, "gts": (), "lts": ()},
    "faults": {
        "workload": None,
        "seed": 0,
        "trials": 4,
        "scale_max": 16.0,
        "magnitude": 1.0,
    },
}
JOB_KINDS = tuple(sorted(JOB_SCHEMAS))

_LEVELS = ("unoptimized", "gt", "gt+lt", "gt+lt+min")


@dataclass
class Job:
    """One submission's durable record (mirrors a ``jobs`` table row)."""

    job_id: str
    key: str
    kind: str
    params: Dict[str, object]
    client: str = ""
    state: str = SUBMITTED
    attempts: int = 0
    result: Optional[dict] = None
    error: str = ""
    exit_class: str = ""
    dedup: bool = False
    created_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: run diagnostics not part of identity
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_result: bool = True) -> dict:
        document = {
            "job_id": self.job_id,
            "key": self.key,
            "kind": self.kind,
            "params": self.params,
            "client": self.client,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "exit_class": self.exit_class,
            "dedup": self.dedup,
        }
        if include_result:
            document["result"] = self.result
        return document


# ----------------------------------------------------------------------
# Canonicalization + keys
# ----------------------------------------------------------------------
def canonical_params(kind: str, params: Optional[dict]) -> Dict[str, object]:
    """Validate ``params`` against ``kind``'s schema, defaults filled.

    Raises :class:`JobError` (the ``fatal`` taxonomy) for unknown
    kinds, unknown parameter names, missing required parameters, or a
    workload that is not registered.
    """
    if kind not in JOB_SCHEMAS:
        raise JobError(f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})")
    schema = JOB_SCHEMAS[kind]
    params = dict(params or {})
    chaos = params.pop("_chaos", None)
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise JobError(
            f"{kind}: unknown parameter(s) {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(schema))})"
        )
    canon: Dict[str, object] = {}
    for name, default in sorted(schema.items()):
        if name in params:
            value = params[name]
        elif default is None:
            raise JobError(f"{kind}: missing required parameter {name!r}")
        else:
            value = default
        canon[name] = _canonical_value(kind, name, value, default)
    from repro.workloads import WORKLOADS

    workload = canon["workload"]
    if workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise JobError(f"{kind}: unknown workload {workload!r} (known: {known})")
    if kind == "synthesize" and canon["level"] not in _LEVELS:
        raise JobError(
            f"synthesize: unknown level {canon['level']!r} (known: {', '.join(_LEVELS)})"
        )
    if chaos is not None:
        if not isinstance(chaos, dict):
            raise JobError("_chaos must be an object")
        canon["_chaos"] = chaos
    return canon


def _canonical_value(kind: str, name: str, value: object, default: object) -> object:
    """Coerce one parameter to its schema type (JSON is stringly loose)."""
    try:
        if name == "workload":
            return str(value).strip().lower()
        if name == "level":
            return str(value)
        if name in ("runs", "seed", "trials"):
            return int(value)
        if name in ("scale_max", "magnitude"):
            return float(value)
        if name in ("gts", "lts"):
            return tuple(
                tuple(str(part).upper() for part in subset) for subset in (value or ())
            )
    except (TypeError, ValueError) as exc:
        raise JobError(f"{kind}: bad value for {name!r}: {exc}")
    return value


def job_key(kind: str, canon: Dict[str, object]) -> str:
    """Content-addressed dedup key: kind + params + workload CDFG.

    ``canon`` must come from :func:`canonical_params`; the ``_chaos``
    side channel is excluded (an injected fault does not change what
    the job computes).  Building the workload CDFG for its fingerprint
    costs a few milliseconds per submission and buys the property that
    a key can never alias across workload definitions.
    """
    from repro.workloads import WORKLOADS

    identity = tuple(
        (name, value) for name, value in sorted(canon.items()) if name != "_chaos"
    )
    cdfg_fp = fingerprint_cdfg(WORKLOADS[canon["workload"]]())
    return "job:" + stable_digest(("job", kind, cdfg_fp, identity))


# ----------------------------------------------------------------------
# Execution (runs inside pool workers — must stay top-level picklable)
# ----------------------------------------------------------------------
def execute_job(kind: str, params: Dict[str, object]) -> dict:
    """Run one job to completion; returns its JSON-serializable result.

    Deterministic: every randomized stage is seeded from the canonical
    parameters, so retries and post-crash re-executions reproduce the
    original result exactly.
    """
    _apply_chaos(params.get("_chaos"))
    if kind == "synthesize":
        return _run_synthesize(params)
    if kind == "verify":
        return _run_verify(params)
    if kind == "explore":
        return _run_explore(params)
    if kind == "faults":
        return _run_faults(params)
    raise JobError(f"unknown job kind {kind!r}")


class WorkerKilled(ReproError):
    """A chaos plan killed this worker (transient: the job retries)."""


def _apply_chaos(chaos: Optional[dict]) -> None:
    """Interpret the ``_chaos`` side channel inside the worker.

    ``sleep`` delays execution (holding a worker slot, for drain and
    timeout drills).  ``kill_once``/``raise_once`` name a marker file:
    the first execution to observe the marker missing creates it and
    dies — ``kill_once`` via ``os._exit`` when running in a real pool
    worker (breaking the pool, exactly what a chaos drill wants),
    degrading to an exception anywhere else so an in-process executor
    never takes the server down with it.
    """
    if not chaos:
        return
    if chaos.get("sleep"):
        time.sleep(float(chaos["sleep"]))
    for mode in ("kill_once", "raise_once"):
        marker_path = chaos.get(mode)
        if marker_path is None:
            continue
        marker = Path(marker_path)
        if marker.exists():
            continue  # already died once; this is the retry
        try:
            marker.touch()
        except OSError:
            pass
        if mode == "kill_once":
            import multiprocessing

            if multiprocessing.parent_process() is not None:
                os._exit(43)
        raise WorkerKilled(f"chaos {mode} at {marker_path}")


def _run_synthesize(params: Dict[str, object]) -> dict:
    from repro.afsm.extract import extract_controllers
    from repro.channels.model import derive_channels
    from repro.local_transforms import optimize_local
    from repro.sim.seeding import NOMINAL
    from repro.sim.system import simulate_system
    from repro.transforms import optimize_global
    from repro.workloads import WORKLOADS

    level = params["level"]
    cdfg = WORKLOADS[params["workload"]]()
    if level == "unoptimized":
        design = extract_controllers(cdfg, derive_channels(cdfg))
    else:
        optimized = optimize_global(cdfg)
        design = extract_controllers(optimized.cdfg, optimized.plan)
        if level in ("gt+lt", "gt+lt+min"):
            design = optimize_local(design).design
        if level == "gt+lt+min":
            from repro.afsm.minimize import minimize_design

            design, __, __ = minimize_design(design)
    result = simulate_system(design, seed=NOMINAL)
    return {
        "kind": "synthesize",
        "workload": params["workload"],
        "level": level,
        "channels": design.plan.count(include_env=False),
        "states": sum(c.state_count for c in design.controllers.values()),
        "transitions": sum(c.transition_count for c in design.controllers.values()),
        "makespan": result.end_time,
        "registers": dict(sorted(result.registers.items())),
        "events": result.events_processed,
    }


def _run_verify(params: Dict[str, object]) -> dict:
    from repro.verify import fuzz_workload

    report = fuzz_workload(
        params["workload"], runs=params["runs"], seed=params["seed"], shrink=True
    )
    document = report.to_dict()
    # wall-clock duration is the one nondeterministic field; served
    # results must be byte-stable across retries and recoveries
    document["duration"] = 0.0
    return {"kind": "verify", "report": document}


def _run_explore(params: Dict[str, object]) -> dict:
    from repro.explore import explore_design_space
    from repro.workloads import WORKLOADS

    cdfg = WORKLOADS[params["workload"]]()
    gts = [list(subset) for subset in params["gts"]] or None
    lts = [list(subset) for subset in params["lts"]] or None
    result = explore_design_space(
        cdfg, global_subsets=gts, local_subsets=lts, incremental=True
    )
    return {
        "kind": "explore",
        "workload": params["workload"],
        "points": [point.to_dict() for point in result.points],
        "pareto": [point.to_dict() for point in result.pareto_points()],
    }


def _run_faults(params: Dict[str, object]) -> dict:
    from repro.resilience import run_campaign

    report = run_campaign(
        params["workload"],
        seed=params["seed"],
        trials=params["trials"],
        scale_max=params["scale_max"],
        magnitude_max=params["magnitude"],
    )
    return {"kind": "faults", "report": report.to_dict()}


# ----------------------------------------------------------------------
# Failure classification (shared exit taxonomy)
# ----------------------------------------------------------------------
def classify_failure(exc: BaseException) -> Tuple[str, str, bool]:
    """Map an execution failure to ``(state, exit_class, retryable)``.

    Worker deaths (broken pools, chaos kills) are *transient* — the
    job goes back to ``SUBMITTED`` under the retry budget.  Timeouts
    and library errors are deterministic, so retrying burns budget for
    nothing: they go terminal immediately, stamped with the shared
    exit taxonomy of :mod:`repro.errors` (``fatal`` for unexecutable
    submissions, ``issues`` for jobs that ran and found problems).
    """
    from concurrent.futures.process import BrokenProcessPool

    from repro.resilience.injection import PointTimeout

    if isinstance(exc, (BrokenProcessPool, WorkerKilled)):
        return FAILED, "issues", True
    if isinstance(exc, PointTimeout):
        return TIMED_OUT, "issues", False
    if isinstance(exc, JobError):
        return FAILED, "fatal", False
    if isinstance(exc, ReproError):
        return FAILED, "issues", False
    return FAILED, "issues", False


def canonical_json(document: object) -> str:
    """The one serialization used for params, results and comparisons."""
    return json.dumps(document, sort_keys=True)
