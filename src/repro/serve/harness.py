"""In-process server harness for tests, benchmarks and drills.

The suite has no async test runner, so the harness hosts a
:class:`~repro.serve.server.JobServer` on a dedicated event-loop
thread and hands synchronous callers a
:class:`~repro.serve.client.ServeClient` bound to the real (ephemeral)
port — the full HTTP stack is exercised, not a shortcut around it.

:meth:`ServerHarness.crash` is the ``kill -9`` stand-in for
single-process tests: it stops the event loop dead — no drain, no
``store.close()``, no state transitions — so jobs that were
``RUNNING`` stay ``RUNNING`` on disk exactly as they would under a
real SIGKILL, and the next server's ``recover()`` has real work to do.
(The cross-*process* version of the same drill, with an actual
``SIGKILL``, lives in ``benchmarks/serve_smoke.py``.)
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Optional, Union

from repro.serve.client import ServeClient
from repro.serve.server import JobServer, ServerConfig


class ServerHarness:
    """Runs one job server on a background event-loop thread."""

    def __init__(
        self, store_path: Union[str, Path], config: Optional[ServerConfig] = None
    ):
        self.store_path = Path(store_path)
        self.config = config or ServerConfig()
        self.server: Optional[JobServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "ServerHarness":
        ready = threading.Event()
        failure = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = JobServer(self.store_path, self.config)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface startup errors to caller
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                # drain-stop path closes things itself; crash path skips
                # all of that on purpose — here we only quiet the loop
                # (bounded: a task that ignores cancellation must not
                # wedge the test process)
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    try:
                        loop.run_until_complete(asyncio.wait(pending, timeout=2.0))
                    except (RuntimeError, asyncio.CancelledError):
                        pass
                try:
                    loop.run_until_complete(loop.shutdown_asyncgens())
                except (RuntimeError, asyncio.CancelledError):
                    pass
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serve-harness", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=30.0)
        if failure:
            raise failure[0]
        if self.server is None or self.server.port is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, **kwargs)

    # ------------------------------------------------------------------
    def _call(self, coro) -> None:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        future.result(timeout=max(60.0, self.config.drain_grace + 10.0))

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: running jobs finish (durable queue stays)."""
        if self._loop is None or not self._thread.is_alive():
            return
        self._call(self.server.stop(drain=drain))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)

    def crash(self) -> None:
        """SIGKILL stand-in: stop the loop with no cleanup whatsoever.

        The store connection is abandoned mid-WAL (SQLite's recovery
        territory, which is the point); pool workers are torn down only
        so the *test process* does not leak them — the store never
        hears about it.
        """
        if self._loop is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        if self.server is not None and self.server.runner is not None:
            self.server.runner.shutdown(wait=False)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)
