"""The paper's differential-equation solver, written for the frontend.

Compiling this kernel with ``repro compile examples/kernels/diffeq.py
--bounds MUL=2,ALU=2`` reproduces the hand-built ``diffeq`` workload:
same per-iteration critical path, identical nominal makespan, and a
register file that matches the golden model bit-for-bit (the update is
factored exactly like the CDFG in :mod:`repro.workloads.diffeq`).

``x1`` and ``dx2`` are parameters rather than locals on purpose: ``x1``
needs an initial value equal to ``x``'s (the loop reads it before the
first write), and precomputing ``dx2 = 2*dx`` keeps the loop preamble
down to the single ``b = dx2 + dx`` addition of the hand-built design.
"""


def diffeq(
    x: float = 0.0,
    y: float = 1.0,
    u: float = 0.0,
    dx: float = 0.125,
    a: float = 1.0,
    x1: float = 0.0,
    dx2: float = 0.25,
) -> float:
    b = dx2 + dx
    while x < a:
        m1 = u * x1
        m2 = u * dx
        x = x + dx
        aa = y + m1
        m1 = aa * b
        y = y + m2
        x1 = x
        u = u - m1
    return y
