"""Minimal frontend example: a bounded accumulation loop.

Compile with ``repro compile examples/kernels/accumulate.py --bounds
ALU=2`` — the loop body's two additions schedule onto separate ALU
instances in the same control step.
"""


def accumulate(n: float = 5.0, step: float = 1.0) -> float:
    total = 0.0
    i = 0.0
    while i < n:
        total = total + step
        i = i + 1.0
    return total
