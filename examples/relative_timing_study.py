#!/usr/bin/env python3
"""GT3 relative-timing study: how delay models change the design.

GT3 removes a constraint arc only when timing analysis proves another
arc always arrives later.  This example sweeps the multiplier/ALU
delay ratio and shows where the paper's arc-10 removal becomes
provable — and that the resulting design stays correct across random
delay assignments *within the assumed bounds*.

Run:  python examples/relative_timing_study.py
"""

from repro.eval.tables import render_table
from repro.sim import simulate_tokens
from repro.timing import DelayModel
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg, diffeq_reference
from repro.workloads.diffeq import N_M2, N_U


def delay_model(multiplier_delay: float, jitter: float) -> DelayModel:
    model = DelayModel()
    low = multiplier_delay * (1 - jitter)
    high = multiplier_delay * (1 + jitter)
    for unit in ("MUL1", "MUL2"):
        model = model.with_override(unit, "*", (low, high))
    return model


def main() -> None:
    rows = []
    for multiplier_delay in (1.0, 2.0, 4.0, 6.0, 12.0):
        for jitter in (0.2, 0.8):
            delays = delay_model(multiplier_delay, jitter)
            cdfg = build_diffeq_cdfg()
            result = optimize_global(cdfg, delays=delays)
            removed = not result.cdfg.has_arc(N_M2, N_U)

            # verify semantics under 20 random delay draws within bounds
            expected = diffeq_reference()
            clean = True
            for seed in range(20):
                sim = simulate_tokens(result.cdfg, delay_model=delays, seed=seed)
                clean &= all(sim.registers[r] == v for r, v in expected.items())

            rows.append(
                (
                    f"{multiplier_delay:.0f}x ALU",
                    f"+/-{jitter:.0%}",
                    "removed" if removed else "kept",
                    "20/20 OK" if clean else "FAILED",
                )
            )
    print(render_table(
        ("multiplier delay", "delay spread", "arc 10 (M2 -> U)", "verification"), rows
    ))
    print(
        "\nSlow, tightly-bounded multipliers make the three-operation chain\n"
        "(arc 11) provably dominate the single multiply (arc 10), enabling\n"
        "the paper's relative-timing removal; fast or loosely-bounded ones\n"
        "do not -- and in every case the design remains correct."
    )


if __name__ == "__main__":
    main()
