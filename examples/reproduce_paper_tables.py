#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Prints Figure 5 (channel elimination), Figure 12 (state machines),
Figure 13 (gate-level logic), the transform trajectory across the
paper's CDFG snapshots, and the simulated performance of each
synthesis level.  Measured numbers are shown next to the published
ones ("m/p") — see EXPERIMENTS.md for the discussion of deltas.

Run:  python examples/reproduce_paper_tables.py
"""

from repro.eval import (
    run_fig5,
    run_fig12,
    run_fig13,
    run_performance,
    run_trajectory,
)


def main() -> None:
    fig5 = run_fig5()
    print(fig5.table())
    print()
    for channel in fig5.channels:
        print("  ", channel)
    print()

    print(run_fig12().table())
    print()
    print(run_fig13().table())
    print()
    print(run_trajectory().table())
    print()
    print(run_performance().table())


if __name__ == "__main__":
    main()
