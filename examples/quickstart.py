#!/usr/bin/env python3
"""Quickstart: synthesize asynchronous distributed control for DIFFEQ.

Runs the complete flow of the paper on the differential-equation
solver benchmark:

1. build the scheduled, resource-bound CDFG (Figure 1),
2. apply the global transformations GT1..GT5 (Figures 3/4/6),
3. extract one burst-mode controller per functional unit,
4. apply the local transformations LT1..LT5,
5. simulate the resulting distributed control against a datapath
   model and check it integrates the ODE correctly,
6. synthesize two-level hazard-checked logic and report its size.

Run:  python examples/quickstart.py
"""

from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.local_transforms import optimize_local
from repro.logic import synthesize_design
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg, diffeq_reference


def main() -> None:
    # 1. the input CDFG --------------------------------------------------
    cdfg = build_diffeq_cdfg()
    print(cdfg.summary())
    print(f"unoptimized channels: {derive_channels(cdfg).count()}")
    print()

    # 2. global transformations ------------------------------------------
    optimized = optimize_global(cdfg)
    for report in optimized.reports:
        print(report.summary())
    print()
    print(optimized.plan.summary())
    print()

    # 3. controller extraction -------------------------------------------
    design = extract_controllers(optimized.cdfg, optimized.plan)
    print(design.summary())
    print()

    # 4. local transformations --------------------------------------------
    local = optimize_local(design)
    print("after local transformations:")
    print(local.design.summary())
    print()

    # 5. execute the distributed control ----------------------------------
    result = simulate_system(local.design, seed=42)
    expected = diffeq_reference()
    for register in ("X", "Y", "U"):
        measured = result.registers[register]
        reference = expected[register]
        status = "OK" if measured == reference else "MISMATCH"
        print(f"  {register} = {measured:.6f} (reference {reference:.6f}) {status}")
    print(f"  makespan: {result.end_time:.1f} time units, "
          f"{result.events_processed} events")
    print()

    # 6. gate-level synthesis ----------------------------------------------
    summaries = synthesize_design(local.design, shared_for=("ALU1",))
    total_products = sum(s.products for s in summaries.values())
    total_literals = sum(s.literals for s in summaries.values())
    for fu, summary in summaries.items():
        print(f"  {fu}: {summary.products} products, {summary.literals} literals "
              f"({summary.mode.value})")
    print(f"  total: {total_products} products, {total_literals} literals")


if __name__ == "__main__":
    main()
