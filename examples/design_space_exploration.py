#!/usr/bin/env python3
"""Design-space exploration with transform subsets.

The paper's central claim is that a *systematic set of transforms*
enables design-space exploration that template-based flows cannot do.
This example explores the space: every subset of {GT1..GT5} is applied
to DIFFEQ, controllers are extracted, and each design point is scored
on (channels, total controller states, simulated makespan).  The
Pareto frontier shows the trade-offs a designer can navigate.

Run:  python examples/design_space_exploration.py
"""

from itertools import combinations

from repro.afsm import extract_controllers
from repro.eval.metrics import count_design
from repro.eval.tables import render_table
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE
from repro.workloads import build_diffeq_cdfg, diffeq_reference


def evaluate(cdfg, enabled):
    """Score one transform subset: (channels, states, makespan)."""
    optimized = optimize_global(cdfg, enabled=enabled)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    counts = count_design(design)
    result = simulate_system(design, seed=9)
    expected = diffeq_reference()
    for register, value in expected.items():
        assert result.registers[register] == value, (enabled, register)
    return counts.channels_controller, counts.total_states, result.end_time


def pareto(points):
    """Indices of non-dominated points (minimize every coordinate)."""
    frontier = []
    for i, point in enumerate(points):
        dominated = any(
            all(o <= p for o, p in zip(other, point)) and other != point
            for other in points
        )
        if not dominated:
            frontier.append(i)
    return frontier


def main() -> None:
    cdfg = build_diffeq_cdfg()
    rows = []
    labels = []
    points = []
    for size in range(len(STANDARD_SEQUENCE) + 1):
        for subset in combinations(STANDARD_SEQUENCE, size):
            channels, states, makespan = evaluate(cdfg, subset)
            label = "+".join(subset) if subset else "(none)"
            labels.append(label)
            points.append((channels, states, makespan))
            rows.append((label, channels, states, f"{makespan:.1f}"))

    frontier = set(pareto(points))
    table_rows = [
        (label, channels, states, makespan, "*" if i in frontier else "")
        for i, (label, channels, states, makespan) in enumerate(rows)
    ]
    print(render_table(
        ("transforms", "cc channels", "states", "makespan", "pareto"), table_rows
    ))
    print(f"\n{len(frontier)} Pareto-optimal design points out of {len(rows)}")
    print("every design point verified against the reference integration")


if __name__ == "__main__":
    main()
