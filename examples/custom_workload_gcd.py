#!/usr/bin/env python3
"""Bring your own algorithm: GCD with data-dependent branching.

Shows the public API for describing a *new* scheduled computation —
Euclid's algorithm, with an IF/ENDIF block inside the loop — and
pushing it through the complete synthesis flow.  This exercises the
conditional-control support (XBM conditionals in the extracted
machines) that DIFFEQ does not need.

Run:  python examples/custom_workload_gcd.py [a] [b]
"""

import sys

from repro.afsm import extract_controllers
from repro.cdfg import CdfgBuilder, check_well_formed
from repro.channels import derive_channels
from repro.local_transforms import optimize_local
from repro.sim import simulate_tokens
from repro.sim.system import simulate_system
from repro.transforms import optimize_global


def build_gcd(a0: int, b0: int):
    """Describe Euclid's GCD as a structured program.

    Binding: the subtractor executes both branch bodies; the comparator
    computes the branch condition D and the loop condition C.
    """
    builder = CdfgBuilder("gcd")
    builder.functional_unit("SUB", "subtractor")
    builder.functional_unit("CMP", "comparator")

    with builder.loop("C", fu="CMP"):
        with builder.if_block("D", fu="SUB") as branch:
            builder.op("A := A - B", fu="SUB")
            with branch.otherwise():
                builder.op("B := B - A", fu="SUB")
        builder.op("D := A > B", fu="CMP")
        builder.op("C := A != B", fu="CMP")

    return builder.build(
        initial={
            "A": float(a0),
            "B": float(b0),
            "C": 1.0 if a0 != b0 else 0.0,
            "D": 1.0 if a0 > b0 else 0.0,
        }
    )


def main() -> None:
    a0 = int(sys.argv[1]) if len(sys.argv) > 1 else 1071
    b0 = int(sys.argv[2]) if len(sys.argv) > 2 else 462

    cdfg = build_gcd(a0, b0)
    check_well_formed(cdfg)
    print(cdfg.summary())

    # quick semantic check at the CDFG level
    token_result = simulate_tokens(cdfg, seed=1)
    print(f"token simulation: gcd({a0}, {b0}) = {token_result.registers['A']:.0f} "
          f"in {token_result.loop_iterations.get('LOOP', 0)} iterations")

    # full synthesis
    optimized = optimize_global(cdfg)
    print(f"channels: {derive_channels(cdfg).count(include_env=False)} -> "
          f"{optimized.plan.count(include_env=False)}")
    design = optimize_local(extract_controllers(optimized.cdfg, optimized.plan)).design
    for fu, controller in design.controllers.items():
        print(f"  {fu}: {controller.state_count} states, "
              f"{controller.transition_count} transitions")

    # run the synthesized controllers
    result = simulate_system(design, seed=1)
    print(f"distributed control computes gcd = {result.registers['A']:.0f} "
          f"(makespan {result.end_time:.1f})")
    assert result.registers["A"] == token_result.registers["A"]


if __name__ == "__main__":
    main()
