"""Machine-readable benchmark results.

:func:`record` appends one measurement to ``BENCH_scaling.json`` at the
repository root so the performance trajectory is tracked across PRs:
each entry carries the bench name, the wall time in seconds, and any
key metrics the bench wants to preserve (speedups, point counts, ...).

The file is a JSON object ``{"runs": [...]}``; entries are appended,
never rewritten, so successive CI runs and local measurements
accumulate into a history that diffing tools (and future PRs) can
compare against.
"""

from __future__ import annotations

import datetime
import json
import platform
from pathlib import Path
from typing import Dict, Optional, Union

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

Metric = Union[int, float, str, bool, None]


def _load(path: Path) -> Dict:
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and isinstance(data.get("runs"), list):
                return data
        except (ValueError, OSError):
            pass  # corrupt/unreadable history: start a fresh one
    return {"runs": []}


def record(
    bench: str,
    wall_time: float,
    path: Optional[Path] = None,
    **metrics: Metric,
) -> Dict:
    """Append one measurement; returns the entry written.

    ``bench`` is a stable identifier (e.g. ``fir_synthesis/taps=48``),
    ``wall_time`` is seconds, and ``metrics`` are any JSON-scalar
    key/value pairs worth tracking across PRs.
    """
    path = path or RESULTS_PATH
    data = _load(path)
    entry = {
        "bench": bench,
        "wall_time": round(float(wall_time), 6),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "metrics": dict(metrics),
    }
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return entry
