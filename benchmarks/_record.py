"""Machine-readable benchmark results.

:func:`record` appends one measurement to ``BENCH_scaling.json`` at the
repository root so the performance trajectory is tracked across PRs:
each entry carries the bench name, the wall time in seconds, and any
key metrics the bench wants to preserve (speedups, point counts, ...).

The file is a JSON object ``{"runs": [...]}``; entries are appended,
never rewritten, so successive CI runs and local measurements
accumulate into a history that diffing tools (and future PRs) can
compare against.  Appends are atomic — each writer re-reads the file,
appends its entry, and renames a temp file into place under an
advisory lock — so concurrent shard benches or parallel CI jobs
serialize their appends and can never leave a torn or half-merged
history behind.

The implementation lives in :mod:`repro.bench` (so the ``repro bench``
CLI shares it); this module re-exports it for the benchmark scripts.
"""

from repro.bench import Metric, RESULTS_PATH, compare_last, record  # noqa: F401
