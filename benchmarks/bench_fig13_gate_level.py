"""Figure 13: gate-level two-level logic comparison.

Synthesizes the optimized-GT-and-LT controllers to hazard-checked
two-level covers (shared products for ALU1 a la Minimalist,
single-output a la 3D for the rest) and prints products/literals
against Yun's and the paper's published numbers.
"""

from repro.eval import run_fig13, YUN_FIG13
from repro.workloads.diffeq import DIFFEQ_FUS


def test_fig13_reproduction(diffeq, benchmark):
    result = benchmark(lambda: run_fig13(diffeq))
    print()
    print(result.table())

    products, literals = result.totals()
    yun_products = sum(v[0] for v in YUN_FIG13.values())
    yun_literals = sum(v[1] for v in YUN_FIG13.values())

    # magnitude: same order as the published designs (the paper's exact
    # minimizers are not available; see EXPERIMENTS.md)
    assert 0.5 * yun_products <= products <= 3 * yun_products
    assert 0.5 * yun_literals <= literals <= 3 * yun_literals

    # per-controller ordering: ALU2 is the largest controller in every
    # column of the paper's Figure 13
    assert result.summaries["ALU2"].literals == max(
        result.summaries[fu].literals for fu in ("ALU1", "ALU2", "MUL2")
    )
    # MUL2 (one operation) is the smallest
    assert result.summaries["MUL2"].literals == min(
        result.summaries[fu].literals for fu in DIFFEQ_FUS
    )


def test_every_cover_is_checked(diffeq):
    result = run_fig13(diffeq)
    for fu, summary in result.summaries.items():
        assert summary.products > 0
        assert summary.literals >= summary.products  # >= 1 literal each
