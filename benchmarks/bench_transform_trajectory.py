"""Transform trajectory: arc/channel counts along Figures 1 -> 3 -> 4 -> 6.

The CDFG snapshots the paper draws correspond to prefixes of the
GT1..GT5 script; this bench prints the counts after each prefix and
verifies the direction of every step.
"""

from repro.eval import run_trajectory


def test_trajectory_reproduction(diffeq, benchmark):
    result = benchmark(lambda: run_trajectory(diffeq))
    print()
    print(result.table())

    by_stage = {stage: (arcs, channels) for stage, arcs, channels in result.steps}
    assert by_stage["Figure 1 (input)"][1] == 15  # + 2 env wires = 17
    # GT1 trades three ENDLOOP syncs for two backward arcs
    assert by_stage["GT1"][0] == by_stage["Figure 1 (input)"][0] - 1
    # GT2 is the big arc killer
    assert by_stage["GT2"][0] < by_stage["GT1"][0]
    # GT3 removes exactly arc 10
    assert by_stage["GT3"][0] == by_stage["GT2"][0] - 1
    # GT5 reaches the Figure 6 channel structure
    assert by_stage["GT5 (Figure 6)"][1] == 5


def test_channel_monotonicity(diffeq):
    result = run_trajectory(diffeq)
    channels = [c for __, __, c in result.steps]
    assert all(later <= earlier for earlier, later in zip(channels, channels[1:]))
