"""Figure 5: GT5 channel elimination on DIFFEQ (10 -> 5 channels).

Regenerates the paper's before/after channel summary and benchmarks
the full global-transform script.
"""

from repro.eval import run_fig5
from repro.transforms import optimize_global


def test_fig5_reproduction(diffeq, benchmark):
    result = benchmark(lambda: run_fig5(diffeq))
    print()
    print(result.table())
    for channel in result.channels:
        print("   ", channel)
    # the paper's headline numbers are matched exactly
    assert result.before_controller_channels == result.paper_before == 10
    assert result.after_controller_channels == result.paper_after == 5
    assert result.after_multiway >= 2


def test_gt5_script_benchmark(diffeq, benchmark):
    result = benchmark(lambda: optimize_global(diffeq))
    assert result.plan.count(include_env=False) == 5
