"""Simulated makespan per synthesis level.

Not a paper table — the paper argues GT1 (loop overlap) and the LTs
(shorter fragments) improve performance without quantifying it; this
bench quantifies the claim on our bounded-delay datapath model.
"""

import pytest

from _record import record
from repro.eval import run_performance
from repro.eval.experiments import synthesize_levels
from repro.sim.system import simulate_system
from repro.transforms import LoopParallelism
from repro.sim.seeding import NOMINAL
from repro.sim.token_sim import simulate_tokens
from repro.workloads import build_diffeq_cdfg, build_ewf_cdfg


def test_performance_levels(diffeq, benchmark):
    result = benchmark(lambda: run_performance(diffeq))
    print()
    print(result.table())
    record(
        "diffeq_performance_levels",
        benchmark.stats.stats.mean,
        **{f"makespan/{level}": round(value, 3)
           for level, value in result.system_times.items()},
    )
    # local transforms must make the controllers measurably faster
    assert (
        result.system_times["optimized-GT-and-LT"]
        < 0.9 * result.system_times["unoptimized"]
    )


def test_gt1_overlap_speedup_token_level(benchmark):
    """GT1's loop overlap shortens the CDFG-level makespan."""

    def run():
        baseline = simulate_tokens(build_diffeq_cdfg(), seed=NOMINAL).end_time
        overlapped_cdfg = build_diffeq_cdfg()
        LoopParallelism().apply(overlapped_cdfg)
        overlapped = simulate_tokens(overlapped_cdfg, seed=NOMINAL).end_time
        return baseline, overlapped

    baseline, overlapped = benchmark(run)
    print(f"\nGT1 token-level makespan: {baseline:.1f} -> {overlapped:.1f}")
    assert overlapped < baseline


@pytest.mark.parametrize("seed", [3, 11])
def test_system_sim_benchmark(diffeq, benchmark, seed):
    designs = synthesize_levels(diffeq)
    design = designs["optimized-GT-and-LT"]
    result = benchmark(lambda: simulate_system(design, seed=seed))
    assert result.end_time > 0
