#!/usr/bin/env python
"""Distributed-exploration smoke drill: kill a sharded run, resume it,
and demand the final report be byte-identical to a serial run.

The scenario CI gates on (see ``.github/workflows/ci.yml``):

1. sweep a 256-point parameter space (2 scenarios x 2 delay variants x
   the 64-point GT/LT grid) serially and uninterrupted -> report A;
2. start the same sweep on 2 work-stealing shards with a journal
   directory, let it land some points, SIGKILL one of its pool worker
   processes (exercising the broken-pool rebuild), then SIGKILL the
   whole process group mid-run;
3. ``--resume`` the journal directory -> report B;
4. assert the journal actually carried state across the kill, and
   ``cmp`` A and B byte-for-byte.

Exit code 0 only if every step holds.  Run from the repository root:

    PYTHONPATH=src python benchmarks/distributed_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

SPACE = {
    "schema": "repro-space/v1",
    "scenarios": [{"workload": "diffeq"}, {"random": 11}],
    "delays": [{"name": "nominal"}, {"name": "x1.5", "scale": 1.5}],
    "seeds": [9],
}


def explore(space_file: Path, *extra: str) -> subprocess.CompletedProcess:
    command = [
        sys.executable, "-m", "repro", "explore", "--space", str(space_file), *extra,
    ]
    return subprocess.run(
        command, cwd=ROOT, env=_env(), capture_output=True, text=True
    )


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


def _children_of(pid: int) -> list:
    """Transitive child PIDs via /proc (Linux CI)."""
    try:
        entries = [int(p) for p in os.listdir("/proc") if p.isdigit()]
    except OSError:
        return []
    parents = {}
    for proc in entries:
        try:
            with open(f"/proc/{proc}/stat", "r") as handle:
                fields = handle.read().rsplit(")", 1)[1].split()
            parents[proc] = int(fields[1])  # ppid is field 4 overall
        except (OSError, IndexError, ValueError):
            continue
    children, frontier = [], [pid]
    while frontier:
        parent = frontier.pop()
        for proc, ppid in parents.items():
            if ppid == parent:
                children.append(proc)
                frontier.append(proc)
    return children


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp = Path(tmp)
        space_file = tmp / "space.json"
        space_file.write_text(json.dumps(SPACE, indent=2) + "\n", encoding="utf-8")
        run_dir = tmp / "run"
        report_serial = tmp / "serial.json"
        report_resumed = tmp / "resumed.json"

        print("== serial uninterrupted run ==", flush=True)
        serial = explore(space_file, "--shards", "1", "--json", str(report_serial))
        if serial.returncode != 0:
            print(serial.stdout)
            print(serial.stderr)
            print(f"FAIL: serial run exited {serial.returncode}")
            return 1

        print("== sharded run, killed mid-flight ==", flush=True)
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "explore",
                "--space", str(space_file), "--shards", "2",
                "--run-dir", str(run_dir), "--json", str(tmp / "never.json"),
            ],
            cwd=ROOT,
            env=_env(),
            start_new_session=True,  # own process group: killable as a unit
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120
            journaled = 0
            while time.time() < deadline:
                journaled = sum(
                    len(path.read_text(encoding="utf-8").splitlines())
                    for path in run_dir.glob("journal*.jsonl")
                ) if run_dir.exists() else 0
                if journaled >= 24 or victim.poll() is not None:
                    break
                time.sleep(0.25)
            if victim.poll() is not None:
                print("FAIL: sharded run finished before it could be killed "
                      "(journal too fast? raise the space size)")
                return 1
            workers = _children_of(victim.pid)
            if workers:
                os.kill(workers[-1], signal.SIGKILL)  # one pool worker dies
                print(f"killed pool worker {workers[-1]}")
                time.sleep(1.0)
            os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
            print(f"killed shard run (pid {victim.pid}) after {journaled} journal lines")
        finally:
            try:
                os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
            victim.wait()

        lines = sum(
            len(path.read_text(encoding="utf-8").splitlines())
            for path in run_dir.glob("journal*.jsonl")
        )
        if lines == 0:
            print("FAIL: the killed run journaled nothing — resume would be a cold run")
            return 1
        print(f"journal survived with {lines} lines")

        print("== resumed run ==", flush=True)
        resumed = explore(
            space_file, "--shards", "2", "--resume", str(run_dir),
            "--json", str(report_resumed),
        )
        if resumed.returncode != 0:
            print(resumed.stdout)
            print(resumed.stderr)
            print(f"FAIL: resumed run exited {resumed.returncode}")
            return 1
        if "resumed" not in resumed.stdout:
            print(resumed.stdout)
            print("FAIL: resume did not pick up journaled points")
            return 1

        a = report_serial.read_bytes()
        b = report_resumed.read_bytes()
        if a != b:
            print("FAIL: resumed report differs from the serial run")
            return 1
        print(f"OK: resumed report byte-identical to serial run ({len(b)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
