"""Shared fixtures for the benchmark harness."""

import pytest

from repro.workloads import build_diffeq_cdfg


@pytest.fixture(scope="session")
def diffeq():
    return build_diffeq_cdfg()
