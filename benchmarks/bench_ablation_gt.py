"""Leave-one-out ablation over the global transforms.

Quantifies each GT's contribution to the two headline metrics of
Figure 12: controller-controller channel count and total machine size.
"""

import pytest

from repro.afsm import extract_controllers
from repro.eval.metrics import count_design
from repro.eval.tables import render_table
from repro.transforms import optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE


def _counts(cdfg, enabled):
    result = optimize_global(cdfg, enabled=enabled)
    design = extract_controllers(result.cdfg, result.plan)
    counts = count_design(design)
    return counts.channels_controller, counts.total_states


def test_gt_leave_one_out(diffeq, benchmark):
    def run():
        rows = []
        full = _counts(diffeq, STANDARD_SEQUENCE)
        rows.append(("full script", *full))
        for drop in STANDARD_SEQUENCE:
            enabled = tuple(name for name in STANDARD_SEQUENCE if name != drop)
            rows.append((f"without {drop}", *_counts(diffeq, enabled)))
        return rows

    rows = benchmark(run)
    print()
    print(render_table(("variant", "cc channels", "total states"), rows))

    by_variant = {row[0]: row[1:] for row in rows}
    full_channels, full_states = by_variant["full script"]
    # GT5 is what reaches 5 channels: dropping it explodes the count
    assert by_variant["without GT5"][0] > full_channels
    # dropping GT4 leaves the copy node unmerged: more states
    assert by_variant["without GT4"][1] >= full_states


@pytest.mark.parametrize("drop", list(STANDARD_SEQUENCE))
def test_each_subset_still_correct(diffeq, drop):
    """Every leave-one-out variant still computes DIFFEQ correctly."""
    from repro.sim import simulate_tokens
    from repro.workloads import diffeq_reference

    enabled = tuple(name for name in STANDARD_SEQUENCE if name != drop)
    result = optimize_global(diffeq, enabled=enabled)
    sim = simulate_tokens(result.cdfg, seed=5)
    for register, value in diffeq_reference().items():
        assert sim.registers[register] == value
