#!/usr/bin/env python
"""Cross-process smoke drill for ``repro serve`` (the CI gate).

The in-process tests cover the protocol; this script covers the one
thing they cannot — a real operating-system ``SIGKILL`` against a real
server process, mid-job:

1. start ``repro serve`` as a subprocess on an ephemeral port;
2. submit a mix of duplicate and distinct jobs over HTTP, recording
   the dedup hit-rate;
3. submit a slow job, wait until it is ``RUNNING``, then ``kill -9``
   the server;
4. restart the server on the same store and verify the job was
   recovered and re-executed to a **byte-identical** result (checked
   against an in-process execution of the same canonical job);
5. drain gracefully and report.

Exit code: 0 on success, 1 on any violated guarantee (the shared
``issues`` taxonomy).

Usage: PYTHONPATH=src python benchmarks/serve_smoke.py [workdir]
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[1] / "src")
sys.path.insert(0, SRC)

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.jobs import canonical_json, canonical_params, execute_job  # noqa: E402

VERIFY = {"workload": "gcd", "runs": 2, "seed": 11}
SYNTH = {"workload": "gcd", "level": "gt+lt"}
DUPLICATES = 8

_failures = []


def check(name: str, ok: bool, detail: str = "") -> None:
    print(f"  [{'ok ' if ok else 'FAIL'}] {name}" + (f" ({detail})" if detail else ""))
    if not ok:
        _failures.append(name)


def start_server(store: Path) -> "tuple[subprocess.Popen, ServeClient]":
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--store", str(store),
            "--workers", "2", "--executor", "process",
            "--max-retries", "2", "--base-delay", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(
            os.environ,
            PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
        ),
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"could not parse server banner: {line!r}")
    client = ServeClient(match.group(1), int(match.group(2)), timeout=60.0)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            if client.healthz()["status"] == "ok":
                return proc, client
        except Exception:
            time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server never became healthy")


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-serve-smoke-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "smoke.sqlite3"
    print(f"serve smoke drill (store {store})")

    # expected results, computed in-process from the canonical params —
    # the byte-identity oracle for everything the server returns
    expected_verify = canonical_json(
        execute_job("verify", canonical_params("verify", VERIFY))
    )
    expected_synth = canonical_json(
        execute_job("synthesize", canonical_params("synthesize", SYNTH))
    )

    proc, client = start_server(store)
    try:
        # -- duplicates + distinct jobs -------------------------------
        first = client.run("verify", VERIFY, client="smoke", timeout=180.0)
        check("distinct job #1 DONE", first["state"] == "DONE", first["error"])
        check(
            "result matches in-process execution",
            canonical_json(first["result"]) == expected_verify,
        )
        for __ in range(DUPLICATES):
            duplicate = client.submit("verify", dict(VERIFY), client="smoke")
            if duplicate["state"] != "DONE":
                duplicate = client.wait(duplicate["job_id"], timeout=60.0)
            check(
                "duplicate served identically",
                canonical_json(duplicate["result"]) == expected_verify,
            )
        stats = client.stats()["store"]
        check(
            "duplicates deduplicated without re-execution",
            stats["executions"] == 1 and stats["dedup_hits"] >= DUPLICATES,
            f"executions={stats['executions']}, dedup_hits={stats['dedup_hits']}",
        )
        rate = stats["dedup_hit_rate"]
        check(f"dedup hit-rate {rate}", rate >= 0.8, f"{DUPLICATES} dups / 1 fresh")

        # -- SIGKILL mid-job ------------------------------------------
        slow = client.submit(
            "synthesize", dict(SYNTH, _chaos={"sleep": 3.0}), client="smoke"
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            current = client.job(slow["job_id"])
            if current and current["state"] == "RUNNING":
                break
            time.sleep(0.05)
        check("slow job reached RUNNING", current["state"] == "RUNNING")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        print(f"  ... SIGKILLed server pid {proc.pid} mid-job")
    finally:
        if proc.poll() is None:
            proc.kill()

    # -- restart: recovery must be exact ------------------------------
    proc, client = start_server(store)
    try:
        health = client.healthz()
        check(
            "restart recovered the in-flight job",
            health["recovered_jobs"] == 1,
            f"recovered_jobs={health['recovered_jobs']}",
        )
        resumed = client.wait(slow["job_id"], timeout=300.0)
        check("resumed job DONE", resumed["state"] == "DONE", resumed["error"])
        check(
            "resumed result byte-identical",
            canonical_json(resumed["result"]) == expected_synth,
        )
        stats = client.stats()["store"]
        check(
            "no double execution after the kill",
            stats["ignored_results"] == 0,
            f"ignored_results={stats['ignored_results']}",
        )
        print(
            f"  dedup hit-rate {stats['dedup_hit_rate']}, "
            f"executions {stats['executions']}, "
            f"recovered {stats['recovered']}, states {stats['states']}"
        )
        client.drain()
        proc.wait(timeout=60)
        check("drained server exited cleanly", proc.returncode == 0,
              f"returncode={proc.returncode}")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    if _failures:
        print(f"serve smoke drill: FAIL ({len(_failures)} violated guarantees)")
        return 1
    print("serve smoke drill: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
