"""Generality: the full flow on GCD (IF/ENDIF) and EWF workloads.

The paper evaluates on DIFFEQ only; this bench demonstrates the same
toolchain end-to-end on two more workloads and reports the same
metrics, including the end-to-end correctness check at every level.
"""

import pytest

from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.eval.metrics import count_design
from repro.eval.tables import render_table
from repro.local_transforms import optimize_local
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.workloads import (
    build_ewf_cdfg,
    build_gcd_cdfg,
    ewf_reference,
    gcd_reference,
)

WORKLOADS = {
    "gcd": (build_gcd_cdfg, gcd_reference),
    "ewf": (build_ewf_cdfg, ewf_reference),
}


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_full_flow(name, benchmark):
    build, reference = WORKLOADS[name]

    def run():
        cdfg = build()
        unopt = extract_controllers(cdfg, derive_channels(cdfg))
        optimized = optimize_global(cdfg)
        gt = extract_controllers(optimized.cdfg, optimized.plan)
        gt_lt = optimize_local(gt).design
        return cdfg, {"unoptimized": unopt, "optimized-GT": gt, "optimized-GT-and-LT": gt_lt}

    cdfg, designs = benchmark(run)

    rows = []
    expected = reference()
    for level, design in designs.items():
        counts = count_design(design)
        result = simulate_system(design, seed=4)
        for register, value in expected.items():
            assert result.registers[register] == value, (name, level, register)
        rows.append(
            (
                level,
                counts.channels_controller,
                counts.total_states,
                counts.total_transitions,
                f"{result.end_time:.1f}",
            )
        )
    print()
    print(f"workload: {name}")
    print(render_table(("level", "cc channels", "states", "transitions", "makespan"), rows))

    # the optimized designs must not be larger or slower than unoptimized
    assert rows[-1][2] <= rows[0][2]
    assert float(rows[-1][4]) <= float(rows[0][4])
