"""Leave-one-out ablation over the local transforms.

Quantifies each LT's contribution to machine size (Figure 12's last
row) and to output-wire count (which drives Figure 13's literals).
"""

from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.eval.tables import render_table
from repro.local_transforms import optimize_local
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.transforms import optimize_global


def _design(diffeq):
    optimized = optimize_global(diffeq)
    return extract_controllers(optimized.cdfg, optimized.plan)


def _counts(design, enabled):
    result = optimize_local(design, enabled=enabled)
    states = sum(c.state_count for c in result.design.controllers.values())
    transitions = sum(c.transition_count for c in result.design.controllers.values())
    outputs = sum(len(c.machine.outputs()) for c in result.design.controllers.values())
    return states, transitions, outputs


def test_lt_leave_one_out(diffeq, benchmark):
    design = _design(diffeq)

    def run():
        rows = [("no local transforms", *_counts(design, ()))]
        rows.append(("full script", *_counts(design, STANDARD_LOCAL_SEQUENCE)))
        for drop in STANDARD_LOCAL_SEQUENCE:
            enabled = tuple(n for n in STANDARD_LOCAL_SEQUENCE if n != drop)
            rows.append((f"without {drop}", *_counts(design, enabled)))
        return rows

    rows = benchmark(run)
    print()
    print(render_table(("variant", "states", "transitions", "output wires"), rows))

    by_variant = {row[0]: row[1:] for row in rows}
    full = by_variant["full script"]
    none = by_variant["no local transforms"]
    # LT4 drives the state reduction: without it the fold never fires
    assert by_variant["without LT4"][0] > full[0]
    # LT5 drives the wire reduction
    assert by_variant["without LT5"][2] > full[2]
    # and the full script at least halves nothing it shouldn't: sanity
    assert full[0] < none[0]
    assert full[2] < none[2]


def test_lt_correctness_each_variant(diffeq):
    from repro.sim.system import simulate_system
    from repro.workloads import diffeq_reference

    design = _design(diffeq)
    expected = diffeq_reference()
    for drop in STANDARD_LOCAL_SEQUENCE:
        enabled = tuple(n for n in STANDARD_LOCAL_SEQUENCE if n != drop)
        result = optimize_local(design, enabled=enabled)
        sim = simulate_system(result.design, seed=2)
        for register, value in expected.items():
            assert sim.registers[register] == value, (drop, register)
