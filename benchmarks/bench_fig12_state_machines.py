"""Figure 12: state-machine comparison across synthesis levels.

Regenerates the paper's table (channels + per-controller state and
transition counts at three optimization levels, with Yun's manual
design as reference) and checks the reproduced shape: the monotone
reduction from unoptimized to optimized-GT-and-LT, and the exact
channel counts.
"""

from repro.eval import run_fig12
from repro.eval.experiments import synthesize_levels
from repro.workloads.diffeq import DIFFEQ_FUS


def test_fig12_reproduction(diffeq, benchmark):
    result = benchmark(lambda: run_fig12(diffeq))
    print()
    print(result.table())

    # channel counts match the paper exactly: 17 -> 5 -> 5
    assert result.channels["unoptimized"] == 17
    assert result.channels["optimized-GT"] == 5
    assert result.channels["optimized-GT-and-LT"] == 5

    # the headline shape: LT shrinks every controller substantially
    unopt = result.counts["unoptimized"]
    final = result.counts["optimized-GT-and-LT"]
    assert final.total_states < 0.65 * unopt.total_states
    assert final.total_transitions < 0.65 * unopt.total_transitions
    for fu in DIFFEQ_FUS:
        assert final.machines[fu][0] < unopt.machines[fu][0]


def test_extraction_benchmark(diffeq, benchmark):
    designs = benchmark(lambda: synthesize_levels(diffeq))
    assert set(designs) == {"unoptimized", "optimized-GT", "optimized-GT-and-LT"}
