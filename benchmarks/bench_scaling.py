"""Scaling study: makespan distribution vs problem size.

Sweeps the DIFFEQ step size (iteration count) and reports the mean
makespan with confidence intervals for the unoptimized and the fully
optimized design, demonstrating that the optimized design's advantage
holds across problem sizes and that makespan grows linearly in the
iteration count (the loop is throughput-bound).
"""

import time

import pytest

from _record import record
from repro import perf, synthesize
from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.eval.stats import measure_makespan, speedup
from repro.eval.tables import render_table
from repro.workloads import build_diffeq_cdfg, build_fir_cdfg, diffeq_reference

SEEDS = tuple(range(8))

#: ``synthesize(build_fir_cdfg(48))`` wall time at the pre-caching seed
#: (commit c995982), measured on the same container as the current
#: numbers: best of two warm runs.  The recorded ``speedup_vs_seed``
#: tracks the win of the analysis-caching layer across PRs.
SEED_FIR48_WALL_TIME = 2.12


def _designs(dx):
    cdfg = build_diffeq_cdfg({"dx": dx})
    unopt = extract_controllers(cdfg, derive_channels(cdfg))
    optimized = synthesize(cdfg)
    return unopt, optimized


def test_scaling_sweep(benchmark):
    def run():
        rows = []
        factors = []
        for dx, iterations in ((0.25, 4), (0.125, 8), (0.0625, 16)):
            expected = diffeq_reference(dx=dx)
            unopt, optimized = _designs(dx)
            base = measure_makespan(unopt, SEEDS, expected_registers=expected)
            fast = measure_makespan(optimized, SEEDS, expected_registers=expected)
            rows.append((iterations, str(base), str(fast), f"{speedup(base, fast):.2f}x"))
            factors.append(speedup(base, fast))
        return rows, factors

    rows, factors = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("iterations", "unoptimized makespan", "GT+LT makespan", "speedup"), rows
    ))
    record(
        "diffeq_scaling_sweep",
        benchmark.stats.stats.mean,
        **{f"speedup_iter{iters}": factor
           for (iters, *__), factor in zip(rows, factors)},
    )
    # the optimized design wins at every size
    assert all(factor > 1.15 for factor in factors)


@pytest.mark.parametrize("taps", [8, 24, 48])
def test_fir_synthesis_wall_time(taps):
    """Wall time of the full synthesis flow on the FIR stress test.

    Records the cached wall time per size, and at the largest size also
    the cache-disabled time — the ratio is the measured win of the
    analysis-caching layer and is tracked across PRs in
    ``BENCH_scaling.json``.
    """
    cdfg = build_fir_cdfg(taps)
    start = time.perf_counter()
    design = synthesize(cdfg)
    elapsed = time.perf_counter() - start
    metrics = {
        "taps": taps,
        "controllers": len(design.controllers),
        "channels": design.plan.count(include_env=False),
        "states": sum(c.state_count for c in design.controllers.values()),
    }
    if taps == 48:
        with perf.caching_disabled():
            start = time.perf_counter()
            synthesize(build_fir_cdfg(taps))
            uncached = time.perf_counter() - start
        metrics["uncached_wall_time"] = round(uncached, 6)
        metrics["cache_speedup"] = round(uncached / elapsed, 2)
        metrics["seed_wall_time"] = SEED_FIR48_WALL_TIME
        metrics["speedup_vs_seed"] = round(SEED_FIR48_WALL_TIME / elapsed, 2)
    entry = record(f"fir_synthesis/taps={taps}", elapsed, **metrics)
    print(f"\n{entry['bench']}: {elapsed:.3f}s  {metrics}")
    assert design.controllers


def test_linear_growth():
    """Makespan grows roughly linearly with the iteration count."""
    means = []
    for dx in (0.25, 0.125, 0.0625):
        __, optimized = _designs(dx)
        means.append(measure_makespan(optimized, seeds=range(4)).mean)
    ratio_a = means[1] / means[0]
    ratio_b = means[2] / means[1]
    assert 1.6 < ratio_a < 2.4
    assert 1.6 < ratio_b < 2.4
