"""Scaling study: makespan distribution vs problem size.

Sweeps the DIFFEQ step size (iteration count) and reports the mean
makespan with confidence intervals for the unoptimized and the fully
optimized design, demonstrating that the optimized design's advantage
holds across problem sizes and that makespan grows linearly in the
iteration count (the loop is throughput-bound).
"""

import pytest

from repro import synthesize
from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.eval.stats import measure_makespan, speedup
from repro.eval.tables import render_table
from repro.workloads import build_diffeq_cdfg, diffeq_reference

SEEDS = tuple(range(8))


def _designs(dx):
    cdfg = build_diffeq_cdfg({"dx": dx})
    unopt = extract_controllers(cdfg, derive_channels(cdfg))
    optimized = synthesize(cdfg)
    return unopt, optimized


def test_scaling_sweep(benchmark):
    def run():
        rows = []
        factors = []
        for dx, iterations in ((0.25, 4), (0.125, 8), (0.0625, 16)):
            expected = diffeq_reference(dx=dx)
            unopt, optimized = _designs(dx)
            base = measure_makespan(unopt, SEEDS, expected_registers=expected)
            fast = measure_makespan(optimized, SEEDS, expected_registers=expected)
            rows.append((iterations, str(base), str(fast), f"{speedup(base, fast):.2f}x"))
            factors.append(speedup(base, fast))
        return rows, factors

    rows, factors = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("iterations", "unoptimized makespan", "GT+LT makespan", "speedup"), rows
    ))
    # the optimized design wins at every size
    assert all(factor > 1.15 for factor in factors)


def test_linear_growth():
    """Makespan grows roughly linearly with the iteration count."""
    means = []
    for dx in (0.25, 0.125, 0.0625):
        __, optimized = _designs(dx)
        means.append(measure_makespan(optimized, seeds=range(4)).mean)
    ratio_a = means[1] / means[0]
    ratio_b = means[2] / means[1]
    assert 1.6 < ratio_a < 2.4
    assert 1.6 < ratio_b < 2.4
