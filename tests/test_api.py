"""Top-level public API."""

import repro
from repro import synthesize
from repro.workloads import build_gcd_cdfg, gcd_reference


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_synthesize_default_scripts(self):
        design = synthesize(build_gcd_cdfg())
        assert set(design.controllers) == {"SUB", "CMP"}
        from repro.sim.system import simulate_system

        result = simulate_system(design, seed=0)
        assert result.registers["A"] == gcd_reference()["A"]

    def test_synthesize_custom_subsets(self):
        design = synthesize(
            build_gcd_cdfg(),
            global_transforms=("GT1", "GT2"),
            local_transforms=(),
        )
        from repro.sim.system import simulate_system

        result = simulate_system(design, seed=0)
        assert result.registers["A"] == gcd_reference()["A"]

    def test_cdfg_reexport(self):
        from repro import Cdfg
        from repro.cdfg.graph import Cdfg as Inner

        assert Cdfg is Inner
