"""Top-level public API."""

import pytest

import repro
from repro import synthesize
from repro.workloads import (
    WORKLOADS,
    build_gcd_cdfg,
    build_workload,
    gcd_reference,
    workload_names,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_synthesize_default_scripts(self):
        design = synthesize(build_gcd_cdfg())
        assert set(design.controllers) == {"SUB", "CMP"}
        from repro.sim.system import simulate_system

        result = simulate_system(design, seed=0)
        assert result.registers["A"] == gcd_reference()["A"]

    def test_synthesize_custom_subsets(self):
        design = synthesize(
            build_gcd_cdfg(),
            global_transforms=("GT1", "GT2"),
            local_transforms=(),
        )
        from repro.sim.system import simulate_system

        result = simulate_system(design, seed=0)
        assert result.registers["A"] == gcd_reference()["A"]

    def test_cdfg_reexport(self):
        from repro import Cdfg
        from repro.cdfg.graph import Cdfg as Inner

        assert Cdfg is Inner


class TestWorkloadRegistry:
    def test_names(self):
        assert workload_names() == sorted(WORKLOADS)
        assert {"diffeq", "gcd", "ewf", "fir"} <= set(workload_names())

    def test_build_by_name_with_kwargs(self):
        cdfg = build_workload("fir", taps=3)
        assert cdfg.name == "fir3"

    def test_build_unknown_name(self):
        with pytest.raises(KeyError, match="known workloads.*diffeq"):
            build_workload("bitcoin-miner")

    def test_synthesize_accepts_workload_name(self):
        design = synthesize("gcd")
        assert set(design.controllers) == {"SUB", "CMP"}
        from repro.sim.system import simulate_system

        result = simulate_system(design, seed=0)
        assert result.registers["A"] == gcd_reference()["A"]

    def test_synthesize_name_is_case_insensitive(self):
        design = synthesize("  GCD ")
        assert set(design.controllers) == {"SUB", "CMP"}

    def test_synthesize_unknown_name(self):
        with pytest.raises(KeyError, match="known workloads"):
            synthesize("nope")

    def test_synthesize_rejects_non_cdfg(self):
        with pytest.raises(TypeError, match="Cdfg, a workload name"):
            synthesize(42)
        with pytest.raises(TypeError, match="got list"):
            synthesize([build_gcd_cdfg()])
