"""Seeded semantic mutants for the transform passes.

Each mutant injects one realistic soundness bug into a GT/LT pass —
in memory, via attribute patching inside a context manager, never by
editing files.  The mutation suite then asserts that BOTH detection
tools kill every non-equivalent mutant:

- the flow-equivalence proof engine (:func:`repro.verify.flow.
  prove_workload` returns an unproved report), and
- the differential conformance fuzzer (:func:`repro.verify.
  fuzz_workload` reports a non-conformant campaign).

A mutant is *killed* when the tool detects it on the pinned workload;
``expect="equivalent"`` marks a negative control whose mutation is
behavior-preserving on every workload (it must survive — a harness
that kills everything is vacuous).  Kill score = killed / expected
non-equivalent mutants, gated at >= 95% per tool.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Tuple

from repro.cdfg.kinds import NodeKind


@dataclass(frozen=True)
class Mutant:
    """One seeded bug: where it lives, how to arm it, where it fires."""

    name: str
    description: str
    #: workload whose synthesis exercises the mutated code path
    workload: str
    #: context manager arming the mutation for the duration of a block
    arm: Callable[[], object]
    #: "killed" (both tools must detect) or "equivalent"
    #: (behavior-preserving negative control: both tools must pass)
    expect: str = "killed"


@contextmanager
def _patched(obj, attribute: str, replacement) -> Iterator[None]:
    # getattr_static preserves the descriptor (staticmethod vs plain
    # function) so the restore puts back exactly what was there
    original = inspect.getattr_static(obj, attribute)
    setattr(obj, attribute, replacement)
    try:
        yield
    finally:
        setattr(obj, attribute, original)


# ----------------------------------------------------------------------
# GT3: swapped slack comparison
# ----------------------------------------------------------------------
@contextmanager
def gt3_swapped_slack() -> Iterator[None]:
    """The dominance test compares candidate and witness the wrong way
    round, so GT3 removes timed arcs whose slack does NOT cover them."""
    import repro.transforms.gt3_relative_timing as gt3
    from repro.timing.analysis import relative_arc_dominates as real

    def swapped(cdfg, candidate, witness, delays=None):
        return real(cdfg, witness, candidate, delays)

    with _patched(gt3, "relative_arc_dominates", swapped):
        yield


# ----------------------------------------------------------------------
# GT2: dropped constraint arc (forgotten self-exclusion)
# ----------------------------------------------------------------------
@contextmanager
def gt2_forgets_exclude_arc() -> Iterator[None]:
    """The domination query no longer excludes the arc under test, so
    every arc "dominates itself" and GT2 drops all of them."""
    import repro.transforms.gt2_dominated as gt2

    real = gt2.dominating_path

    def unexcluded(cdfg, src, dst, exclude_arc=None):
        return real(cdfg, src, dst, exclude_arc=None)

    with _patched(gt2, "dominating_path", unexcluded):
        yield


@contextmanager
def gt2_unprotects_decision_arc() -> Iterator[None]:
    """The IF -> ENDIF decision arc loses its protection and gets
    removed as dominated; ENDIF no longer learns which branch ran."""
    from repro.transforms.gt2_dominated import RemoveDominatedConstraints

    with _patched(
        RemoveDominatedConstraints,
        "_is_protected",
        staticmethod(lambda cdfg, arc: False),
    ):
        yield


# ----------------------------------------------------------------------
# GT4: dropped independence checks
# ----------------------------------------------------------------------
@contextmanager
def gt4_ignores_dependences() -> Iterator[None]:
    """Merge candidates are no longer checked for connecting dependence
    arcs or read/write conflicts — GT4 merges data-dependent
    assignments (e.g. the FIR delay-line shifts) into one node."""
    from repro.transforms.gt4_merge_assignments import MergeAssignmentNodes

    def undiscriminating(self, cdfg, target, copy_name):
        target_node = cdfg.node(target)
        if target_node.kind is not NodeKind.OPERATION:
            return False
        if cdfg.block_of(target) != cdfg.block_of(copy_name):
            return False
        if cdfg.branch_of(target) != cdfg.branch_of(copy_name):
            return False
        for src, dst in ((target, copy_name), (copy_name, target)):
            exclude = (src, dst) if cdfg.has_arc(src, dst) else None
            if cdfg.implies(src, dst, exclude_arc=exclude):
                return False
        return True

    with _patched(MergeAssignmentNodes, "_mergeable", undiscriminating):
        yield


# ----------------------------------------------------------------------
# GT5: unsound channel merge
# ----------------------------------------------------------------------
@contextmanager
def gt5_merges_concurrent_channels() -> Iterator[None]:
    """The never-concurrently-occupied analysis answers yes for every
    pair, so GT5 merges channels that CAN carry tokens at once."""
    from repro.transforms.gt5_channel_elimination import ChannelElimination

    with _patched(
        ChannelElimination,
        "_never_concurrent",
        lambda self, cdfg, reach, left, right: True,
    ):
        yield


# ----------------------------------------------------------------------
# LT2: off-by-one move
# ----------------------------------------------------------------------
@contextmanager
def lt2_moves_one_too_far() -> Iterator[None]:
    """Reset edges land one burst past the last safe position — onto
    or beyond the transition that waits for the partner ack."""
    from repro.local_transforms.lt2_move_down import MoveDown

    real = MoveDown._latest_position

    def off_by_one(self, machine, chain, position, edge):
        best = real(self, machine, chain, position, edge)
        return min(best + 1, len(chain) - 1)

    with _patched(MoveDown, "_latest_position", off_by_one):
        yield


# ----------------------------------------------------------------------
# negative control: an equivalent mutant
# ----------------------------------------------------------------------
@contextmanager
def lt4_empty_latch_protection() -> Iterator[None]:
    """Clears LT4's copy-fragment latch-protection set.  On every
    shipped workload that set is already empty, so the mutation is
    behavior-preserving — the control that proves the harness does not
    kill indiscriminately."""
    from repro.local_transforms.lt4_remove_acks import RemoveAcknowledgments

    with _patched(
        RemoveAcknowledgments,
        "_copy_fragment_latches",
        staticmethod(lambda machine: set()),
    ):
        yield


MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        "gt3-swapped-slack",
        "GT3 dominance test compares candidate/witness swapped",
        "diffeq",
        gt3_swapped_slack,
    ),
    Mutant(
        "gt2-forgets-exclude-arc",
        "GT2 domination BFS no longer excludes the arc under test",
        "diffeq",
        gt2_forgets_exclude_arc,
    ),
    Mutant(
        "gt2-unprotected-decision-arc",
        "GT2 removes the protected IF -> ENDIF decision arc",
        "gcd",
        gt2_unprotects_decision_arc,
    ),
    Mutant(
        "gt4-ignores-dependences",
        "GT4 merges data-dependent assignments",
        "fir",
        gt4_ignores_dependences,
    ),
    Mutant(
        "gt5-merges-concurrent-channels",
        "GT5 merges channels that can be concurrently occupied",
        "fir",
        gt5_merges_concurrent_channels,
    ),
    Mutant(
        "lt2-off-by-one",
        "LT2 moves reset edges one burst too far",
        "diffeq",
        lt2_moves_one_too_far,
    ),
    Mutant(
        "lt4-empty-latch-protection",
        "equivalent control: clears an already-empty protection set",
        "diffeq",
        lt4_empty_latch_protection,
        expect="equivalent",
    ),
)

KILLABLE = tuple(m for m in MUTANTS if m.expect == "killed")
