"""Mutation-testing the verification stack itself.

Every seeded soundness bug in ``mutants.py`` must be killed by BOTH
detection tools — the symbolic flow-equivalence checker and the
differential fuzzer — on the pinned workload.  The equivalent-mutant
negative control must survive both.  The aggregate kill score is gated
at >= 95% per tool (in practice 100%: any survivor is a regression in
an oracle, not an accepted loss).
"""

import pytest

from repro.verify import fuzz_workload
from repro.verify.flow import prove_workload

from tests.mutation.mutants import KILLABLE, MUTANTS

FUZZ_RUNS = 3
KILL_SCORE_FLOOR = 0.95


def flow_kills(mutant) -> bool:
    """The proof engine refutes (or errors out on) the mutated flow."""
    with mutant.arm():
        report = prove_workload(mutant.workload)
    return not report.proved


def fuzzer_kills(mutant) -> bool:
    """The differential campaign reports non-conformance."""
    with mutant.arm():
        report = fuzz_workload(
            mutant.workload, runs=FUZZ_RUNS, seed=0, shrink=False
        )
    return not report.conformant


class TestEveryMutantKilled:
    @pytest.mark.parametrize("mutant", KILLABLE, ids=lambda m: m.name)
    def test_flow_checker_kills(self, mutant):
        assert flow_kills(mutant), (
            f"flow checker failed to kill {mutant.name} ({mutant.description}) "
            f"on {mutant.workload}"
        )

    @pytest.mark.parametrize("mutant", KILLABLE, ids=lambda m: m.name)
    def test_fuzzer_kills(self, mutant):
        assert fuzzer_kills(mutant), (
            f"fuzzer failed to kill {mutant.name} ({mutant.description}) "
            f"on {mutant.workload}"
        )


class TestEquivalentControlSurvives:
    @pytest.mark.parametrize(
        "mutant",
        [m for m in MUTANTS if m.expect == "equivalent"],
        ids=lambda m: m.name,
    )
    def test_control_is_not_killed(self, mutant):
        assert not flow_kills(mutant), (
            f"the equivalent control {mutant.name} was killed by the flow "
            "checker — the mutation is no longer behavior-preserving"
        )


class TestKillScore:
    def test_flow_checker_kill_score(self):
        killed = sum(1 for m in KILLABLE if flow_kills(m))
        score = killed / len(KILLABLE)
        assert score >= KILL_SCORE_FLOOR, f"flow kill score {score:.0%}"

    def test_fuzzer_kill_score(self):
        killed = sum(1 for m in KILLABLE if fuzzer_kills(m))
        score = killed / len(KILLABLE)
        assert score >= KILL_SCORE_FLOOR, f"fuzzer kill score {score:.0%}"


class TestCleanRestore:
    """Arming and disarming a mutant leaves the real passes intact."""

    def test_flow_proves_after_all_mutants(self):
        for mutant in MUTANTS:
            with mutant.arm():
                pass
        assert prove_workload("diffeq").proved
