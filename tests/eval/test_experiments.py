"""Experiment drivers reproduce the paper's artifacts."""

import pytest

from repro.eval import (
    PAPER_FIG12,
    PAPER_FIG13,
    YUN_FIG12,
    YUN_FIG13,
    run_fig5,
    run_fig12,
    run_fig13,
    run_performance,
    run_trajectory,
)
from repro.workloads.diffeq import DIFFEQ_FUS


@pytest.fixture(scope="module")
def fig12(diffeq):
    return run_fig12(diffeq)


class TestFig5:
    def test_exact_channel_reproduction(self, diffeq):
        result = run_fig5(diffeq)
        assert (result.before_controller_channels, result.after_controller_channels) == (10, 5)

    def test_multiway_channels_present(self, diffeq):
        result = run_fig5(diffeq)
        assert result.after_multiway >= 2
        assert any("multi-way" in line for line in result.channels)

    def test_table_renders(self, diffeq):
        text = run_fig5(diffeq).table()
        assert "Figure 5" in text and "10" in text and "5" in text


class TestFig12:
    def test_channel_column(self, fig12):
        assert fig12.channels["unoptimized"] == 17
        assert fig12.channels["optimized-GT"] == 5
        assert fig12.channels["optimized-GT-and-LT"] == 5

    def test_monotone_reduction_per_controller(self, fig12):
        for fu in DIFFEQ_FUS:
            unopt = fig12.counts["unoptimized"].machines[fu][0]
            final = fig12.counts["optimized-GT-and-LT"].machines[fu][0]
            assert final < unopt, fu

    def test_totals_shrink_like_paper(self, fig12):
        """Paper totals: 104 -> 62 -> 28 states. We check the same
        two-step monotone shape with at least 40% total reduction."""
        totals = [fig12.counts[level].total_states for level in
                  ("unoptimized", "optimized-GT", "optimized-GT-and-LT")]
        assert totals[2] < totals[1] < totals[0]
        assert totals[2] < 0.6 * totals[0]

    def test_table_includes_yun_row(self, fig12):
        assert "YUN (manual)" in fig12.table()


class TestFig13:
    def test_magnitude(self, diffeq):
        result = run_fig13(diffeq)
        products, literals = result.totals()
        paper_products = sum(v[0] for v in PAPER_FIG13.values())
        paper_literals = sum(v[1] for v in PAPER_FIG13.values())
        assert products <= 4 * paper_products
        assert literals <= 4 * paper_literals

    def test_ordering_matches_paper(self, diffeq):
        """ALU2 largest, MUL2 smallest in every column of Figure 13."""
        result = run_fig13(diffeq)
        literals = {fu: result.summaries[fu].literals for fu in DIFFEQ_FUS}
        assert min(literals, key=literals.get) == "MUL2"


class TestTrajectory:
    def test_ends_at_five_channels(self, diffeq):
        result = run_trajectory(diffeq)
        assert result.steps[-1][2] == 5

    def test_monotone_channels(self, diffeq):
        result = run_trajectory(diffeq)
        channels = [c for __, __, c in result.steps]
        assert channels == sorted(channels, reverse=True)


class TestPerformance:
    def test_lt_design_fastest(self, diffeq):
        result = run_performance(diffeq)
        assert (
            result.system_times["optimized-GT-and-LT"]
            < result.system_times["unoptimized"]
        )

    def test_token_times_present(self, diffeq):
        result = run_performance(diffeq)
        assert result.token_times["optimized-GT"] <= result.token_times["unoptimized"]


class TestReferenceNumbers:
    def test_yun_totals(self):
        assert sum(v[0] for v in YUN_FIG13.values()) == 93
        assert sum(v[1] for v in YUN_FIG13.values()) == 307

    def test_paper_totals(self):
        assert sum(v[0] for v in PAPER_FIG13.values()) == 73
        assert sum(v[1] for v in PAPER_FIG13.values()) == 244

    def test_fig12_units(self):
        assert set(YUN_FIG12) == set(DIFFEQ_FUS)
        for level in PAPER_FIG12.values():
            assert set(level) == set(DIFFEQ_FUS)
