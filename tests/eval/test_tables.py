"""Table rendering."""

from repro.eval.tables import render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("name", "value"), [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # columns aligned: 'value' column starts at the same offset
        offset = lines[0].index("value")
        assert lines[2][offset:].strip() == "1"

    def test_handles_wide_cells(self):
        text = render_table(("x",), [("very-wide-cell-content",)])
        assert "very-wide-cell-content" in text

    def test_numbers_coerced(self):
        text = render_table(("a", "b"), [(1.5, None)])
        assert "1.5" in text and "None" in text
