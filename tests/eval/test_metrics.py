"""Design counting helpers."""

from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.eval.metrics import channel_counts, count_design
from repro.workloads.diffeq import DIFFEQ_FUS


class TestCounts:
    def test_count_design(self, diffeq):
        design = extract_controllers(diffeq, derive_channels(diffeq))
        counts = count_design(design)
        assert counts.channels_total == 17
        assert counts.channels_controller == 15
        assert set(counts.machines) == set(DIFFEQ_FUS)
        assert counts.total_states == sum(s for s, __ in counts.machines.values())
        assert counts.total_transitions == sum(t for __, t in counts.machines.values())

    def test_channel_counts_helper(self, diffeq):
        total, controller, multiway = channel_counts(diffeq)
        assert (total, controller, multiway) == (17, 15, 0)
