"""Makespan statistics."""

import pytest

from repro import synthesize
from repro.eval.stats import MakespanStats, measure_makespan, speedup
from repro.workloads import build_gcd_cdfg, gcd_reference


class TestMakespanStats:
    def test_summary_quantities(self):
        stats = MakespanStats([10.0, 12.0, 11.0, 13.0])
        assert stats.count == 4
        assert stats.minimum == 10.0
        assert stats.maximum == 13.0
        assert 11.0 < stats.mean < 12.0
        low, high = stats.confidence_interval()
        assert low < stats.mean < high

    def test_single_sample(self):
        stats = MakespanStats([5.0])
        assert stats.std == 0.0
        assert stats.confidence_interval() == (5.0, 5.0)

    def test_str(self):
        assert "95% CI" in str(MakespanStats([1.0, 2.0]))


class TestMeasure:
    @pytest.fixture(scope="class")
    def design(self):
        return synthesize(build_gcd_cdfg())

    def test_samples_per_seed(self, design):
        stats = measure_makespan(design, seeds=range(6))
        assert stats.count == 6
        assert stats.minimum > 0

    def test_verifies_registers(self, design):
        stats = measure_makespan(
            design, seeds=range(3), expected_registers=gcd_reference()
        )
        assert stats.count == 3

    def test_wrong_reference_raises(self, design):
        with pytest.raises(AssertionError):
            measure_makespan(design, seeds=range(2), expected_registers={"A": -1.0})

    def test_speedup(self):
        baseline = MakespanStats([100.0, 102.0])
        optimized = MakespanStats([50.0, 52.0])
        assert 1.9 < speedup(baseline, optimized) < 2.1
