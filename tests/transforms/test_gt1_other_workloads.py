"""GT1 behaviour on the non-DIFFEQ workloads."""

import pytest

from repro.cdfg import NodeKind
from repro.sim import NOMINAL, simulate_tokens
from repro.transforms import LoopParallelism
from repro.workloads import (
    build_ewf_cdfg,
    build_fir_cdfg,
    build_gcd_cdfg,
    ewf_reference,
    fir_reference,
    gcd_reference,
)


class TestEwf:
    def test_backward_arcs_for_filter_state(self):
        cdfg = build_ewf_cdfg()
        LoopParallelism().apply(cdfg)
        backward = {(arc.src, arc.dst) for arc in cdfg.arcs() if arc.backward}
        # the filter state registers S and Y carry across iterations
        assert any(src.startswith("S :=") for src, __ in backward) or any(
            dst.startswith("T1 :=") for __, dst in backward
        )

    def test_semantics(self):
        cdfg = build_ewf_cdfg()
        LoopParallelism().apply(cdfg)
        expected = ewf_reference()
        for seed in range(4):
            result = simulate_tokens(cdfg, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value


class TestGcd:
    def test_if_block_survives(self):
        cdfg = build_gcd_cdfg()
        LoopParallelism().apply(cdfg)
        assert cdfg.nodes_of_kind(NodeKind.IF)
        assert cdfg.has_arc("IF", "ENDIF")

    def test_branch_candidates_pruned(self):
        """All backward candidates of GCD are implied through the
        ENDLOOP/LOOP path (the comparator still closes each iteration)."""
        cdfg = build_gcd_cdfg()
        report = LoopParallelism().apply(cdfg)
        assert not [arc for arc in cdfg.arcs() if arc.backward]
        assert any("pruned" in note for note in report.details)

    def test_semantics(self):
        cdfg = build_gcd_cdfg(126, 84)
        LoopParallelism().apply(cdfg)
        result = simulate_tokens(cdfg, seed=2)
        assert result.registers["A"] == gcd_reference(126, 84)["A"]


class TestFir:
    def test_delay_line_backward_arcs(self):
        cdfg = build_fir_cdfg(taps=4)
        LoopParallelism().apply(cdfg)
        backward = [arc for arc in cdfg.arcs() if arc.backward]
        assert backward  # shifts feed next iteration's products

    def test_overlap_profits(self):
        cdfg = build_fir_cdfg(taps=4, samples=8)
        baseline = simulate_tokens(cdfg, seed=NOMINAL).end_time
        optimized = build_fir_cdfg(taps=4, samples=8)
        LoopParallelism().apply(optimized)
        assert simulate_tokens(optimized, seed=NOMINAL).end_time < baseline

    def test_semantics(self):
        cdfg = build_fir_cdfg(taps=4, samples=5)
        LoopParallelism().apply(cdfg)
        expected = fir_reference(taps=4, samples=5)
        result = simulate_tokens(cdfg, seed=1)
        for register, value in expected.items():
            assert result.registers[register] == value
