"""Transform scripts, pass manager and precedence preservation."""

import pytest

from repro.sim import NOMINAL, simulate_tokens
from repro.transforms import check_precedence_preserved, optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE, build_sequence
from repro.workloads import (
    build_diffeq_cdfg,
    build_ewf_cdfg,
    build_gcd_cdfg,
    diffeq_reference,
    ewf_reference,
    gcd_reference,
)


class TestScript:
    def test_standard_sequence_order(self):
        transforms = build_sequence()
        assert [t.name for t in transforms] == list(STANDARD_SEQUENCE)

    def test_subset_respects_canonical_order(self):
        transforms = build_sequence(("GT4", "GT1"))
        assert [t.name for t in transforms] == ["GT1", "GT4"]

    def test_unknown_transform_rejected(self):
        with pytest.raises(KeyError):
            build_sequence(("GT9",))

    def test_original_graph_untouched(self, diffeq):
        before_arcs = diffeq.arc_count()
        optimize_global(diffeq)
        assert diffeq.arc_count() == before_arcs

    def test_reports_for_each_transform(self, diffeq_optimized):
        assert [r.name for r in diffeq_optimized.reports] == list(STANDARD_SEQUENCE)

    def test_plan_available(self, diffeq_optimized):
        assert diffeq_optimized.channel_plan is not None
        assert diffeq_optimized.plan is diffeq_optimized.channel_plan

    def test_plan_fallback_without_gt5(self, diffeq):
        result = optimize_global(diffeq, enabled=("GT1", "GT2"))
        assert result.channel_plan is None
        assert result.plan.count() > 0  # derived one-wire-per-arc


class TestEndToEndSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_diffeq(self, diffeq_optimized, seed):
        expected = diffeq_reference()
        result = simulate_tokens(diffeq_optimized.cdfg, seed=seed)
        for register, value in expected.items():
            assert result.registers[register] == value

    @pytest.mark.parametrize("seed", range(6))
    def test_gcd(self, gcd_optimized, seed):
        expected = gcd_reference()
        result = simulate_tokens(gcd_optimized.cdfg, seed=seed)
        for register, value in expected.items():
            assert result.registers[register] == value

    @pytest.mark.parametrize("seed", range(6))
    def test_ewf(self, ewf_optimized, seed):
        expected = ewf_reference()
        result = simulate_tokens(ewf_optimized.cdfg, seed=seed)
        for register, value in expected.items():
            assert result.registers[register] == value

    def test_gcd_other_operand_order(self):
        cdfg = build_gcd_cdfg(a0=30, b0=42)
        result_unopt = simulate_tokens(cdfg, seed=0)
        optimized = optimize_global(cdfg)
        result_opt = simulate_tokens(optimized.cdfg, seed=0)
        assert result_opt.registers["A"] == result_unopt.registers["A"] == 6

    def test_diffeq_many_iterations(self):
        cdfg = build_diffeq_cdfg({"dx": 0.03125, "a": 1.0})
        optimized = optimize_global(cdfg)
        expected = diffeq_reference(dx=0.03125, a=1.0)
        result = simulate_tokens(optimized.cdfg, seed=1)
        assert result.loop_iterations["LOOP"] == 32
        for register, value in expected.items():
            assert result.registers[register] == value


class TestPrecedencePreservation:
    def test_gt2_gt4_gt5_preserve_all_ordering(self, diffeq):
        """GT2 (dominated), GT4 (merging) and GT5 (channels) must lose
        no ordered pair of operations."""
        result = optimize_global(diffeq, enabled=("GT2", "GT4", "GT5"))
        missing = check_precedence_preserved(diffeq, result.cdfg, allow_missing=True)
        assert missing == []

    def test_gt3_relaxations_are_timing_justified_only(self, diffeq):
        """GT3 may drop ordered pairs, but only ones its timing proof
        covers: on DIFFEQ exactly the (M2, U) pair family."""
        before = optimize_global(diffeq, enabled=("GT1", "GT2"))
        after = optimize_global(diffeq, enabled=("GT1", "GT2", "GT3"))
        missing = check_precedence_preserved(before.cdfg, after.cdfg, allow_missing=True)
        assert missing  # GT3 did relax something
        for src_id, dst_id in missing:
            assert src_id.startswith("M2 := U * dx"), (src_id, dst_id)

    def test_performance_monotone_improvement(self, diffeq):
        """Each script prefix should never slow the design down."""
        times = []
        prefixes = [(), ("GT1",), ("GT1", "GT2"), ("GT1", "GT2", "GT3"),
                    ("GT1", "GT2", "GT3", "GT4")]
        for prefix in prefixes:
            result = optimize_global(diffeq, enabled=prefix) if prefix else None
            graph = result.cdfg if result else diffeq
            times.append(simulate_tokens(graph, seed=NOMINAL).end_time)
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier + 1e-9, times
