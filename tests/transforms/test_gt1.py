"""GT1 loop parallelism: the paper's exact DIFFEQ behaviour."""

import pytest

from repro.cdfg import ArcRole
from repro.sim import NOMINAL, simulate_tokens
from repro.transforms import LoopParallelism
from repro.workloads import build_diffeq_cdfg, build_ewf_cdfg, diffeq_reference
from repro.workloads.diffeq import (
    N_A,
    N_C,
    N_ENDLOOP,
    N_M1A,
    N_M1B,
    N_M2,
    N_U,
    N_X,
)


@pytest.fixture
def after_gt1():
    cdfg = build_diffeq_cdfg()
    report = LoopParallelism().apply(cdfg)
    return cdfg, report


class TestStepA:
    def test_removes_arcs_1_2_3(self, after_gt1):
        cdfg, __ = after_gt1
        assert not cdfg.has_arc(N_U, N_ENDLOOP)
        assert not cdfg.has_arc(N_M1B, N_ENDLOOP)
        assert not cdfg.has_arc(N_M2, N_ENDLOOP)

    def test_keeps_fu_scheduling_arc_4(self, after_gt1):
        cdfg, __ = after_gt1
        assert cdfg.arc(N_C, N_ENDLOOP).has_role(ArcRole.SCHEDULING)

    def test_report_lists_three_removals(self, after_gt1):
        __, report = after_gt1
        removed = [d for d in report.details if d.startswith("A:")]
        assert len(removed) == 3


class TestStepB:
    def test_adds_exactly_backward_arcs_8_and_9(self, after_gt1):
        """The paper: 'In the example, step B adds the two backward
        arcs 8 and 9' -- from U := U - M1 to the first uses of U."""
        cdfg, report = after_gt1
        backward = [arc for arc in cdfg.arcs() if arc.backward]
        assert {(a.src, a.dst) for a in backward} == {(N_U, N_M1A), (N_U, N_M2)}

    def test_backward_arcs_flagged(self, after_gt1):
        cdfg, __ = after_gt1
        assert cdfg.arc(N_U, N_M1A).backward
        assert cdfg.arc(N_U, N_M2).backward

    def test_implied_candidates_pruned(self, after_gt1):
        __, report = after_gt1
        pruned = [d for d in report.details if "pruned" in d]
        assert pruned  # X/Y/M1/M2/X1 candidates are all implied


class TestStepsCAndD:
    def test_step_c_adds_nothing(self, after_gt1):
        """'In the DIFFEQ example, step C does not need to add any
        constraint.'"""
        __, report = after_gt1
        assert any("C: (C := X < a, ENDLOOP) dominated" in d for d in report.details)
        assert not any(d.startswith("C: added") for d in report.details)

    def test_step_d_adds_nothing(self, after_gt1):
        """'step D does, like step C, not add any constraints' -- every
        FU's first body node already reaches ENDLOOP."""
        __, report = after_gt1
        assert not any(d.startswith("D: added") for d in report.details)

    def test_first_fu_nodes_reach_endloop(self, after_gt1):
        cdfg, __ = after_gt1
        for first in (N_A, N_M1A, N_M2, N_X):
            assert cdfg.implies(first, N_ENDLOOP)


class TestSemanticsAndOverlap:
    def test_results_unchanged(self, after_gt1):
        cdfg, __ = after_gt1
        expected = diffeq_reference()
        for seed in range(8):
            result = simulate_tokens(cdfg, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value, (seed, register)

    def test_iterations_overlap(self):
        """GT1's purpose: successive iterations overlap in time."""
        baseline = simulate_tokens(build_diffeq_cdfg(), seed=NOMINAL)
        cdfg = build_diffeq_cdfg()
        LoopParallelism().apply(cdfg)
        optimized = simulate_tokens(cdfg, seed=NOMINAL)
        assert optimized.end_time < baseline.end_time

    def test_channel_safety_maintained(self, after_gt1):
        """Step D guarantees at most one outstanding transition per
        wire even with overlapped iterations."""
        cdfg, __ = after_gt1
        result = simulate_tokens(cdfg, seed=3)
        assert result.violations == []

    def test_ewf_overlap_is_large(self):
        """EWF has no long loop-carried chain: overlap must pay off."""
        baseline = simulate_tokens(build_ewf_cdfg(), seed=NOMINAL)
        cdfg = build_ewf_cdfg()
        LoopParallelism().apply(cdfg)
        optimized = simulate_tokens(cdfg, seed=NOMINAL)
        assert optimized.end_time < baseline.end_time


class TestNoLoopGraphs:
    def test_no_op_without_loops(self):
        from repro.cdfg import CdfgBuilder

        builder = CdfgBuilder("flat")
        builder.op("A := B + C", fu="ALU")
        cdfg = builder.build()
        report = LoopParallelism().apply(cdfg)
        assert not report.applied
