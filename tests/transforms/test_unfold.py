"""Cross-iteration reachability via loop unfolding."""

import pytest

from repro.errors import TransformError
from repro.transforms import LoopParallelism
from repro.transforms.unfold import UnfoldedReach
from repro.workloads import build_diffeq_cdfg
from repro.workloads.diffeq import N_A, N_B, N_C, N_M1A, N_U, N_X


class TestCopies:
    def test_out_of_loop_single_copy(self, diffeq):
        reach = UnfoldedReach(diffeq, unfold=3)
        assert reach.copies(N_B) == [(N_B, None)]

    def test_in_loop_copies(self, diffeq):
        reach = UnfoldedReach(diffeq, unfold=3)
        assert reach.copies(N_A) == [(N_A, 0), (N_A, 1), (N_A, 2)]

    def test_loop_node_iterated(self, diffeq):
        reach = UnfoldedReach(diffeq, unfold=2)
        assert len(reach.copies("LOOP")) == 2

    def test_unfold_validation(self, diffeq):
        with pytest.raises(TransformError):
            UnfoldedReach(diffeq, unfold=0)


class TestReachability:
    def test_same_iteration_data_chain(self, diffeq):
        reach = UnfoldedReach(diffeq)
        assert reach.implies_same_iteration(N_M1A, N_U)
        assert not reach.implies_same_iteration(N_U, N_M1A)

    def test_entry_reaches_first_iteration(self, diffeq):
        reach = UnfoldedReach(diffeq)
        assert reach.path_exists((N_B, None), (N_A, 0))

    def test_iterate_arc_crosses_iterations(self, diffeq):
        reach = UnfoldedReach(diffeq, unfold=2)
        assert reach.implies_next_iteration(N_C, N_X)

    def test_backward_arcs_cross_iterations(self):
        cdfg = build_diffeq_cdfg()
        LoopParallelism().apply(cdfg)
        reach = UnfoldedReach(cdfg, unfold=2)
        # backward arc 8: U's done enables next iteration's first multiply
        assert reach.implies_next_iteration(N_U, N_M1A)

    def test_next_iteration_requires_loop_nodes(self, diffeq):
        reach = UnfoldedReach(diffeq, unfold=2)
        with pytest.raises(TransformError):
            reach.implies_next_iteration(N_B, N_A)
