"""GT4 assignment-node merging."""

import pytest

from repro.cdfg import CdfgBuilder
from repro.sim import simulate_tokens
from repro.transforms import (
    LoopParallelism,
    MergeAssignmentNodes,
    RemoveDominatedConstraints,
)
from repro.workloads import build_diffeq_cdfg, diffeq_reference
from repro.workloads.diffeq import N_X1, N_Y


@pytest.fixture
def prepared():
    cdfg = build_diffeq_cdfg()
    LoopParallelism().apply(cdfg)
    RemoveDominatedConstraints().apply(cdfg)
    return cdfg


class TestPaperExample:
    def test_merges_y_update_with_x1_copy(self, prepared):
        """'the two nodes are merged into one node Y := Y + M2; X1 := X'"""
        report = MergeAssignmentNodes().apply(prepared)
        assert report.applied
        merged = f"{N_Y}; {N_X1}"
        assert prepared.has_node(merged)
        assert not prepared.has_node(N_X1)

    def test_merged_node_carries_both_statements(self, prepared):
        MergeAssignmentNodes().apply(prepared)
        node = prepared.node(f"{N_Y}; {N_X1}")
        assert [str(s) for s in node.statements] == ["Y := Y + M2", "X1 := X"]
        assert node.uses_functional_unit  # the Y update needs the ALU

    def test_schedule_shrinks(self, prepared):
        before = len(prepared.fu_schedule("ALU2"))
        MergeAssignmentNodes().apply(prepared)
        assert len(prepared.fu_schedule("ALU2")) == before - 1

    def test_semantics_preserved(self, prepared):
        MergeAssignmentNodes().apply(prepared)
        expected = diffeq_reference()
        for seed in range(8):
            result = simulate_tokens(prepared, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value, (seed, register)


class TestMergeConditions:
    def test_no_merge_when_copy_reads_partner_result(self):
        builder = CdfgBuilder("t")
        builder.op("A := P + Q", fu="ALU")
        builder.op("B := A", fu="ALU")  # depends on A: not parallelizable
        cdfg = builder.build()
        report = MergeAssignmentNodes().apply(cdfg)
        assert not report.applied

    def test_no_merge_when_partner_reads_copy_result(self):
        builder = CdfgBuilder("t")
        builder.op("B := P", fu="ALU")
        builder.op("A := B + Q", fu="ALU")
        cdfg = builder.build()
        report = MergeAssignmentNodes().apply(cdfg)
        assert not report.applied

    def test_independent_copy_merges_with_successor(self):
        builder = CdfgBuilder("t")
        builder.op("B := P", fu="ALU")  # copy first in schedule
        builder.op("A := P + Q", fu="ALU")
        cdfg = builder.build()
        report = MergeAssignmentNodes().apply(cdfg)
        assert report.applied
        assert cdfg.has_node("B := P; A := P + Q")

    def test_copy_chain_merges_repeatedly(self):
        builder = CdfgBuilder("t")
        builder.op("A := P + Q", fu="ALU")
        builder.op("B := P", fu="ALU")
        builder.op("C := Q", fu="ALU")
        cdfg = builder.build()
        report = MergeAssignmentNodes().apply(cdfg)
        assert len(report.merged_nodes) == 2
        assert len(cdfg.fu_schedule("ALU")) == 1

    def test_lone_copy_not_merged_across_units(self):
        builder = CdfgBuilder("t")
        builder.op("A := P + Q", fu="ALU")
        builder.op("B := P", fu="COPIER")
        cdfg = builder.build()
        report = MergeAssignmentNodes().apply(cdfg)
        assert not report.applied

    def test_no_merge_across_blocks(self):
        builder = CdfgBuilder("t")
        builder.op("B := P", fu="ALU")
        with builder.loop("C", fu="ALU"):
            builder.op("C := C - P", fu="ALU")
        cdfg = builder.build(initial={"C": 3, "P": 1})
        report = MergeAssignmentNodes().apply(cdfg)
        assert not report.applied
