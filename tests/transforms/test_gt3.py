"""GT3 relative-timing optimization."""

import pytest

from repro.sim import simulate_tokens
from repro.timing import DelayModel
from repro.timing.analysis import relative_arc_dominates
from repro.transforms import (
    LoopParallelism,
    RelativeTimingOptimization,
    RemoveDominatedConstraints,
)
from repro.workloads import build_diffeq_cdfg, diffeq_reference
from repro.workloads.diffeq import N_M1B, N_M2, N_U


@pytest.fixture
def after_gt1_gt2():
    cdfg = build_diffeq_cdfg()
    LoopParallelism().apply(cdfg)
    RemoveDominatedConstraints().apply(cdfg)
    return cdfg


class TestPaperExample:
    def test_arc10_removed_with_arc11_witness(self, after_gt1_gt2):
        """'the latter constraint arc (11) is slower ... Hence, the
        former arc (10) is deleted.'"""
        report = RelativeTimingOptimization().apply(after_gt1_gt2)
        assert report.applied
        assert not after_gt1_gt2.has_arc(N_M2, N_U)  # arc 10 gone
        assert after_gt1_gt2.has_arc(N_M1B, N_U)  # arc 11 kept
        assert any("witness: M1 := A * B" in d for d in report.details)

    def test_proof_direct(self, after_gt1_gt2):
        candidate = after_gt1_gt2.arc(N_M2, N_U)
        witness = after_gt1_gt2.arc(N_M1B, N_U)
        assert relative_arc_dominates(after_gt1_gt2, candidate, witness)
        # and never the other way around: one multiply cannot dominate
        # a multiply-add-multiply chain
        assert not relative_arc_dominates(after_gt1_gt2, witness, candidate)


class TestDelaySensitivity:
    def test_not_removed_when_multiplies_are_fast(self, after_gt1_gt2):
        """With a 1-cycle multiplier and a slow ALU the three-operation
        chain no longer provably dominates: arc 10 must survive."""
        delays = DelayModel()
        delays = delays.with_override("MUL1", "*", (1.0, 1.0))
        delays = delays.with_override("MUL2", "*", (30.0, 40.0))
        RelativeTimingOptimization(delays=delays).apply(after_gt1_gt2)
        assert after_gt1_gt2.has_arc(N_M2, N_U)

    def test_wide_intervals_block_removal(self, after_gt1_gt2):
        delays = DelayModel()
        for fu in ("MUL1", "MUL2"):
            delays = delays.with_override(fu, "*", (1.0, 100.0))
        RelativeTimingOptimization(delays=delays).apply(after_gt1_gt2)
        assert after_gt1_gt2.has_arc(N_M2, N_U)


class TestSafety:
    def test_semantics_preserved_within_delay_bounds(self, after_gt1_gt2):
        RelativeTimingOptimization().apply(after_gt1_gt2)
        expected = diffeq_reference()
        for seed in range(10):
            result = simulate_tokens(after_gt1_gt2, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value, (seed, register)

    def test_never_leaves_destination_unconstrained(self, after_gt1_gt2):
        RelativeTimingOptimization().apply(after_gt1_gt2)
        for node in after_gt1_gt2.operation_nodes():
            incoming = [
                arc
                for arc in after_gt1_gt2.arcs_to(node.name)
                if not arc.backward and not after_gt1_gt2.is_iterate_arc(arc)
            ]
            backward = [arc for arc in after_gt1_gt2.arcs_to(node.name) if arc.backward]
            assert incoming or backward, node.name

    def test_idempotent_after_fixpoint(self, after_gt1_gt2):
        RelativeTimingOptimization().apply(after_gt1_gt2)
        second = RelativeTimingOptimization().apply(after_gt1_gt2)
        assert not second.applied
