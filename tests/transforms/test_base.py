"""Pass manager and precedence-preservation checking."""

import pytest

from repro.cdfg import Cdfg
from repro.errors import TransformError
from repro.transforms import (
    MergeAssignmentNodes,
    PassManager,
    RemoveDominatedConstraints,
    Transform,
    TransformReport,
    check_precedence_preserved,
)
from repro.workloads import build_diffeq_cdfg
from repro.workloads.diffeq import N_M1A, N_U


class _BreakOrdering(Transform):
    """Deliberately removes a load-bearing arc (for testing)."""

    name = "break"

    def apply(self, cdfg: Cdfg) -> TransformReport:
        cdfg.remove_arc("M1 := A * B", N_U)
        return TransformReport(self.name, applied=True)


class TestPassManager:
    def test_runs_on_a_copy(self, diffeq):
        manager = PassManager()
        before = diffeq.arc_count()
        result, reports = manager.run(diffeq, [RemoveDominatedConstraints()])
        assert diffeq.arc_count() == before
        assert result.arc_count() < before
        assert len(reports) == 1

    def test_checked_mode_validates(self, diffeq):
        manager = PassManager(checked=True)
        result, __ = manager.run(diffeq, [RemoveDominatedConstraints(), MergeAssignmentNodes()])
        assert result is not diffeq


class TestPrecedenceChecking:
    def test_gt2_preserves_everything(self, diffeq):
        manager = PassManager()
        after, __ = manager.run(diffeq, [RemoveDominatedConstraints()])
        assert check_precedence_preserved(diffeq, after) == []

    def test_lost_ordering_detected(self, diffeq):
        manager = PassManager(checked=False)
        after, __ = manager.run(diffeq, [_BreakOrdering()])
        missing = check_precedence_preserved(diffeq, after, allow_missing=True)
        assert missing
        assert any(src.startswith("M1 := A * B") for src, __ in missing)

    def test_raises_unless_allowed(self, diffeq):
        manager = PassManager(checked=False)
        after, __ = manager.run(diffeq, [_BreakOrdering()])
        with pytest.raises(TransformError):
            check_precedence_preserved(diffeq, after)

    def test_merged_nodes_resolve(self, diffeq):
        manager = PassManager()
        after, __ = manager.run(diffeq, [MergeAssignmentNodes()])
        assert check_precedence_preserved(diffeq, after) == []

    def test_report_summary_format(self):
        report = TransformReport("GTX", applied=True, removed_arcs=["a"], added_arcs=["b", "c"])
        summary = report.summary()
        assert "GTX" in summary and "-1 arcs" in summary and "+2 arcs" in summary
