"""GT5.2 concurrency reduction, exercised on a crafted workload.

DIFFEQ never needs GT5.2 (its lone-pair arcs disappear by other
means), so this suite builds a three-unit pipeline where the direct
FU_A -> FU_C wire can only be eliminated by rerouting the constraint
through a hub on FU_B — the transform of the paper's Figure 8.

GT3 is deliberately left out of the script here: with the default
delay model the same lone arc is provably never-last and GT3 simply
deletes it, which demonstrates an interesting interplay — in scripts
that include GT3, concurrency reduction only triggers on arcs whose
timing cannot be proven (checked by the last test).
"""

import pytest

from repro.cdfg import CdfgBuilder
from repro.sim import simulate_tokens
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.transforms.gt5_channel_elimination import ChannelElimination


def _pipeline():
    """FU_A feeds FU_B and FU_C; FU_C also needs FU_B's independent
    product.  The A->C data arc is the lone wire between that pair."""
    builder = CdfgBuilder("pipeline3")
    builder.input("k", 1.0)
    builder.input("m", 0.5)
    builder.input("limit", 4.0)
    builder.input("one", 1.0)
    with builder.loop("C", fu="CNT"):
        builder.op("P := P + k", fu="FU_A")
        builder.op("Q := Q * m", fu="FU_B")
        builder.op("T := P * Q", fu="FU_B")
        builder.op("R := P + Q", fu="FU_C")
        builder.op("I := I + one", fu="CNT")
        builder.op("C := I < limit", fu="CNT")
    return builder.build(
        initial={"P": 0.0, "Q": 8.0, "T": 0.0, "R": 0.0, "I": 0.0, "C": 1.0}
    )


def _reference():
    p, q, t, r = 0.0, 8.0, 0.0, 0.0
    i = 0.0
    while i < 4.0:
        p = p + 1.0
        q = q * 0.5
        t = p * q
        r = p + q
        i = i + 1.0
    return {"P": p, "Q": q, "T": t, "R": r, "I": i}


class TestConcurrencyReduction:
    def test_direct_pair_wire_eliminated(self):
        cdfg = _pipeline()
        result = optimize_global(cdfg, enabled=("GT1", "GT2", "GT4", "GT5"))
        gt5 = result.report("GT5")
        assert any("5.2: rerouted" in note for note in gt5.details), gt5.details
        pairs = {
            (result.cdfg.fu_of(src), result.cdfg.fu_of(dst))
            for channel in result.plan.controller_channels()
            for src, dst in channel.arcs
        }
        assert ("FU_A", "FU_C") not in pairs

    def test_rerouted_constraint_still_enforced(self):
        cdfg = _pipeline()
        result = optimize_global(cdfg, enabled=("GT1", "GT2", "GT4", "GT5"))
        # P's producer must still precede R := P + Q
        assert result.cdfg.implies("P := P + k", "R := P + Q")

    def test_semantics_preserved(self):
        cdfg = _pipeline()
        result = optimize_global(cdfg, enabled=("GT1", "GT2", "GT4", "GT5"))
        expected = _reference()
        for seed in range(6):
            sim = simulate_tokens(result.cdfg, seed=seed)
            for register, value in expected.items():
                assert sim.registers[register] == value, (seed, register)

    def test_full_pipeline_to_controllers(self):
        from repro.afsm import extract_controllers
        from repro.local_transforms import optimize_local

        cdfg = _pipeline()
        result = optimize_global(cdfg, enabled=("GT1", "GT2", "GT4", "GT5"))
        design = optimize_local(
            extract_controllers(result.cdfg, result.plan)
        ).design
        sim = simulate_system(design, seed=3)
        for register, value in _reference().items():
            assert sim.registers[register] == value

    def test_disabled_keeps_direct_wire(self):
        cdfg = _pipeline()
        from repro.transforms import (
            LoopParallelism,
            MergeAssignmentNodes,
            RemoveDominatedConstraints,
        )

        working = cdfg.copy()
        for transform in (
            LoopParallelism(),
            RemoveDominatedConstraints(),
            MergeAssignmentNodes(),
        ):
            transform.apply(working)
        report = ChannelElimination(enable_concurrency_reduction=False).apply(working)
        plan = report.artifacts["channel_plan"]
        pairs = {
            (working.fu_of(src), working.fu_of(dst))
            for channel in plan.controller_channels()
            for src, dst in channel.arcs
        }
        assert ("FU_A", "FU_C") in pairs

    def test_gt3_subsumes_the_reroute_under_provable_timing(self):
        '''With GT3 enabled and the default delays, the lone arc is
        provably never-last and is deleted outright: GT5.2 has nothing
        left to do and the pair wire is gone anyway.'''
        cdfg = _pipeline()
        result = optimize_global(cdfg)
        gt5 = result.report("GT5")
        assert not any("5.2: rerouted" in note for note in gt5.details)
        pairs = {
            (result.cdfg.fu_of(src), result.cdfg.fu_of(dst))
            for channel in result.plan.controller_channels()
            for src, dst in channel.arcs
        }
        assert ("FU_A", "FU_C") not in pairs
