"""GT2 dominated-constraint removal."""

import pytest

from repro.cdfg import Arc, CdfgBuilder
from repro.cdfg.arc import control_tag
from repro.sim import simulate_tokens
from repro.transforms import LoopParallelism, RemoveDominatedConstraints
from repro.workloads import build_diffeq_cdfg, diffeq_reference
from repro.workloads.diffeq import N_A, N_M1A, N_U


class TestPaperExample:
    def test_arc5_removed(self):
        """'Consider constraint arc 5 in Figure 1 ... implied by the
        path consisting of the two constraints 6 and 7.'"""
        cdfg = build_diffeq_cdfg()
        report = RemoveDominatedConstraints().apply(cdfg)
        assert report.applied
        assert not cdfg.has_arc(N_M1A, N_U)
        # the path through arcs 6 and 7 still orders the nodes
        assert cdfg.implies(N_M1A, N_U)

    def test_ordering_via_arcs_6_and_7_survives(self):
        # arc 6 is irreducible; arc 7 (the A -> U scheduling arc) is
        # itself dominated by the data chain through M1 := A * B, so
        # GT2 may drop the arc -- but the ordering must survive.
        cdfg = build_diffeq_cdfg()
        RemoveDominatedConstraints().apply(cdfg)
        assert cdfg.has_arc(N_M1A, N_A)  # arc 6
        assert cdfg.implies(N_A, N_U)  # arc 7's ordering


class TestTransitiveReduction:
    def test_result_has_no_dominated_arcs(self):
        cdfg = build_diffeq_cdfg()
        LoopParallelism().apply(cdfg)
        RemoveDominatedConstraints().apply(cdfg)
        for arc in cdfg.forward_arcs():
            if RemoveDominatedConstraints._is_protected(cdfg, arc):
                continue
            assert not cdfg.implies(arc.src, arc.dst, exclude_arc=arc.key), arc

    def test_closure_preserved(self):
        cdfg = build_diffeq_cdfg()
        before_pairs = {
            (src, dst)
            for src in cdfg.node_names()
            for dst in cdfg.reachable_from(src)
            if src != dst
        }
        RemoveDominatedConstraints().apply(cdfg)
        after_pairs = {
            (src, dst)
            for src in cdfg.node_names()
            for dst in cdfg.reachable_from(src)
            if src != dst
        }
        assert before_pairs == after_pairs

    def test_chain_of_redundancy(self):
        """u->v implied via w, u->w implied via x: both removable."""
        builder = CdfgBuilder("t")
        builder.op("X := A + B", fu="F1")
        builder.op("W := X + B", fu="F2")
        builder.op("V := W + X", fu="F3")
        cdfg = builder.build()
        cdfg.add_arc(Arc("X := A + B", "V := W + X", frozenset({control_tag()})))
        RemoveDominatedConstraints().apply(cdfg)
        assert not cdfg.has_arc("X := A + B", "V := W + X")

    def test_backward_arcs_untouched(self):
        cdfg = build_diffeq_cdfg()
        LoopParallelism().apply(cdfg)
        backward_before = {arc.key for arc in cdfg.arcs() if arc.backward}
        RemoveDominatedConstraints().apply(cdfg)
        backward_after = {arc.key for arc in cdfg.arcs() if arc.backward}
        assert backward_before == backward_after

    def test_decision_arc_protected(self, gcd):
        cdfg = gcd.copy()
        RemoveDominatedConstraints().apply(cdfg)
        assert cdfg.has_arc("IF", "ENDIF")


class TestSemantics:
    def test_diffeq_results_unchanged(self):
        cdfg = build_diffeq_cdfg()
        RemoveDominatedConstraints().apply(cdfg)
        expected = diffeq_reference()
        for seed in range(5):
            result = simulate_tokens(cdfg, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value

    def test_idempotent(self):
        cdfg = build_diffeq_cdfg()
        first = RemoveDominatedConstraints().apply(cdfg)
        second = RemoveDominatedConstraints().apply(cdfg)
        assert first.applied
        assert not second.applied
