"""GT5 internals: concurrency proofs and safe additions."""

import pytest

from repro.transforms import (
    LoopParallelism,
    MergeAssignmentNodes,
    RelativeTimingOptimization,
    RemoveDominatedConstraints,
)
from repro.transforms.gt5_channel_elimination import ChannelElimination
from repro.transforms.unfold import UnfoldedReach
from repro.workloads import build_diffeq_cdfg
from repro.workloads.diffeq import N_A, N_B, N_LOOP, N_M1A, N_M1B, N_M2, N_U


@pytest.fixture
def prepared():
    cdfg = build_diffeq_cdfg()
    for transform in (
        LoopParallelism(),
        RemoveDominatedConstraints(),
        RelativeTimingOptimization(),
        MergeAssignmentNodes(),
    ):
        transform.apply(cdfg)
    return cdfg


class TestNeverConcurrent:
    def test_sequential_events_share_wire(self, prepared):
        """d1 (M1A -> A) and d3 (M1B -> U) alternate: multiplexable."""
        gt5 = ChannelElimination()
        reach = UnfoldedReach(prepared, unfold=4)
        assert gt5._never_concurrent(prepared, reach, (N_M1A, N_A), (N_M1B, N_U))

    def test_one_shot_vs_cycle(self, prepared):
        """B's entry event precedes every iteration event."""
        gt5 = ChannelElimination()
        reach = UnfoldedReach(prepared, unfold=4)
        merged = "Y := Y + M2; X1 := X"
        assert gt5._never_concurrent(prepared, reach, (N_B, N_LOOP), (N_A, merged))

    def test_simultaneous_events_rejected(self, prepared):
        """Two arcs fired by the same done event are pending together:
        a (single-receiver-style) multiplexing of them is rejected —
        only the multi-way mechanism may combine them."""
        gt5 = ChannelElimination()
        reach = UnfoldedReach(prepared, unfold=4)
        assert not gt5._never_concurrent(
            prepared, reach, (N_LOOP, N_M1A), (N_LOOP, N_M2)
        )


class TestSafeAdditions:
    def test_added_arcs_limited_per_merge(self, prepared):
        gt5 = ChannelElimination(max_added_arcs_per_merge=0)
        report = gt5.apply(prepared.copy())
        assert not any("5.3: safe addition" in note for note in report.details)

    def test_symmetrization_disabled(self, prepared):
        gt5 = ChannelElimination(enable_symmetrization=False)
        report = gt5.apply(prepared.copy())
        plan = report.artifacts["channel_plan"]
        # B's one-shot group cannot join the A-group: one extra channel
        assert plan.count(include_env=False) >= 6


class TestPlanInvariants:
    def test_single_sender_per_channel(self, prepared):
        report = ChannelElimination().apply(prepared)
        plan = report.artifacts["channel_plan"]
        for channel in plan.channels:
            senders = {prepared.fu_of(src) for src, __ in channel.arcs}
            assert senders == {channel.src_fu}

    def test_env_channels_untouched(self, prepared):
        report = ChannelElimination().apply(prepared)
        plan = report.artifacts["channel_plan"]
        env = [c for c in plan.channels if c.is_env]
        assert len(env) == 2
        assert all(len(c.arcs) == 1 for c in env)
