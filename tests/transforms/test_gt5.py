"""GT5 channel elimination: the Figure 5 reduction (10 -> 5)."""

import pytest

from repro.channels import derive_channels
from repro.sim import simulate_tokens
from repro.transforms import optimize_global
from repro.transforms.gt5_channel_elimination import ChannelElimination
from repro.transforms.scripts import optimize_global as run_script
from repro.workloads import build_diffeq_cdfg, diffeq_reference


class TestFigure5:
    def test_ten_controller_channels_before_gt5(self, diffeq):
        """Figure 5 left side: ten controller-controller channels after
        GT1-GT4."""
        result = optimize_global(diffeq, enabled=("GT1", "GT2", "GT3", "GT4"))
        plan = derive_channels(result.cdfg)
        assert plan.count(include_env=False) == 10

    def test_five_channels_after_gt5(self, diffeq_optimized):
        """Figure 5 right side / Figure 12: five channels, including
        multi-way channels."""
        plan = diffeq_optimized.plan
        assert plan.count(include_env=False) == 5

    def test_multiway_channels_exist(self, diffeq_optimized):
        assert diffeq_optimized.plan.multiway_count() >= 2

    def test_loop_broadcast_channel(self, diffeq_optimized):
        """The ALU2 controller (LOOP) broadcasts to both multipliers on
        one multi-way channel."""
        plan = diffeq_optimized.plan
        alu2_channels = [
            c for c in plan.controller_channels() if c.src_fu == "ALU2"
        ]
        assert len(alu2_channels) == 1
        assert alu2_channels[0].dst_fus == frozenset({"MUL1", "MUL2"})


class TestPlanConsistency:
    def test_every_cc_arc_assigned_exactly_once(self, diffeq_optimized):
        plan = diffeq_optimized.plan
        cdfg = diffeq_optimized.cdfg
        cc_arcs = {
            arc.key
            for arc in cdfg.inter_fu_arcs()
        }
        assert set(plan.arc_to_channel) == cc_arcs

    def test_channel_arcs_match_declared_fus(self, diffeq_optimized):
        plan = diffeq_optimized.plan
        cdfg = diffeq_optimized.cdfg
        for channel in plan.channels:
            for src, dst in channel.arcs:
                assert cdfg.fu_of(src) == channel.src_fu
                assert cdfg.fu_of(dst) in channel.dst_fus

    def test_multiway_channels_cover_all_receivers(self, diffeq_optimized):
        """Symmetrization invariant: every event (source node) of a
        multi-way channel has an arc to every receiver FU."""
        plan = diffeq_optimized.plan
        cdfg = diffeq_optimized.cdfg
        for channel in plan.controller_channels():
            by_source = {}
            for src, dst in channel.arcs:
                by_source.setdefault(src, set()).add(cdfg.fu_of(dst))
            for source, receivers in by_source.items():
                assert receivers == set(channel.dst_fus), (channel.name, source)


class TestSafeAdditions:
    def test_added_arcs_are_implied(self, diffeq):
        """GT5.3 additions must be zero-cost: already implied by the
        remaining constraints (checked by re-running GT2-style
        implication with the arc removed)."""
        result = optimize_global(diffeq)
        cdfg = result.cdfg
        gt5 = result.report("GT5")
        for description in gt5.added_arcs:
            src, __, rest = description.partition(" -> ")
            # recorded as str(Arc): "src -> dst [tags]..."
            dst = rest.split(" [")[0]
            if not cdfg.has_arc(src, dst):
                continue  # arc text for 5.2 chains
            arc = cdfg.arc(src, dst)
            if arc.backward:
                continue  # cross-iteration implication checked in GT5 itself
            assert cdfg.implies(src, dst, exclude_arc=arc.key), description

    def test_semantics_with_gt5(self, diffeq_optimized):
        expected = diffeq_reference()
        for seed in range(8):
            result = simulate_tokens(diffeq_optimized.cdfg, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value, (seed, register)


class TestKnobs:
    def test_disable_symmetrization(self, diffeq):
        gt5 = ChannelElimination(enable_symmetrization=False)
        result = optimize_global(diffeq, enabled=("GT1", "GT2", "GT3", "GT4"))
        report = gt5.apply(result.cdfg)
        plan = report.artifacts["channel_plan"]
        # without safe additions the B-group cannot join the A-group
        assert plan.count(include_env=False) >= 5

    def test_multiplexed_channels_never_concurrent_empirically(self, diffeq_optimized):
        """Empirical cross-check of the structural proof: during
        simulation, no two arcs of one channel ever hold tokens at the
        same instant (single-transition wires)."""
        from repro.sim.token_sim import TokenSimulator

        cdfg = diffeq_optimized.cdfg
        plan = diffeq_optimized.plan
        sim = TokenSimulator(cdfg, seed=11)
        arc_to_channel = plan.arc_to_channel

        live = {}
        original_emit = sim._emit
        original_consume = sim._consume

        def emit(arc):
            channel = arc_to_channel.get(arc.key)
            if channel is not None:
                pending = live.setdefault(channel, set())
                # one transition may fan out to all receivers of a
                # multi-way channel (same source node); events from
                # *different* sources must never be pending together
                sources = {src for src, __ in pending}
                assert sources <= {arc.key[0]}, (
                    f"channel {channel} concurrently active: {pending} and {arc.key}"
                )
                pending.add(arc.key)
            original_emit(arc)

        def consume(arcs):
            for arc in arcs:
                channel = arc_to_channel.get(arc.key)
                if channel is not None and channel in live:
                    live[channel].discard(arc.key)
            original_consume(arcs)

        sim._emit = emit
        sim._consume = consume
        result = sim.run()
        assert result.violations == []
