"""LT4: acknowledgment removal."""

import pytest

from repro.afsm import extract_controllers
from repro.afsm.signals import SignalKind
from repro.local_transforms import RemoveAcknowledgments
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg


@pytest.fixture
def alu1():
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    return design.controllers["ALU1"].machine.copy()


@pytest.fixture
def alu2():
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    return design.controllers["ALU2"].machine.copy()


class TestRemoval:
    def test_mux_and_latch_acks_removed(self, alu1):
        report = RemoveAcknowledgments().apply(alu1)
        assert report.applied
        names = {s.name for s in alu1.signals()}
        assert "mux0_Y_ack" not in names
        assert "reg_A_sel_ALU1_ack" not in names
        assert "reg_A_latch_ack" not in names

    def test_fu_completion_kept(self, alu1):
        """The operation's completion is essential (data-dependent
        delay): its ack survives."""
        RemoveAcknowledgments().apply(alu1)
        names = {s.name for s in alu1.signals()}
        assert "go_add_ack" in names
        assert "go_sub_ack" in names

    def test_states_fold_away(self, alu1):
        before = alu1.state_count
        report = RemoveAcknowledgments().apply(alu1)
        assert report.folded_states > 0
        assert alu1.state_count < before

    def test_condition_register_latch_ack_kept(self, alu2):
        """The LOOP samples C directly: C's latch completion is
        essential and must survive LT4 (the paper removes only
        *non-essential* acknowledgments)."""
        report = RemoveAcknowledgments().apply(alu2)
        names = {s.name for s in alu2.signals()}
        assert "reg_C_latch_ack" in names
        assert any("essential" in note for note in report.details)

    def test_custom_keep_set(self, alu1):
        report = RemoveAcknowledgments(removable_kinds=frozenset({"src_mux"})).apply(alu1)
        names = {s.name for s in alu1.signals()}
        assert "mux0_Y_ack" not in names
        assert "reg_A_latch_ack" in names  # latch not in removable set

    def test_idempotent(self, alu1):
        RemoveAcknowledgments().apply(alu1)
        second = RemoveAcknowledgments().apply(alu1)
        assert not second.applied
