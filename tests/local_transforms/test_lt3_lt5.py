"""LT3 mux preselection and LT5 signal sharing."""

import pytest

from repro.afsm import extract_controllers
from repro.afsm.signals import SignalKind
from repro.local_transforms import (
    MoveDown,
    MoveUp,
    MuxPreselection,
    RemoveAcknowledgments,
    SignalSharing,
)
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg


def _machine(fu):
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    machine = design.controllers[fu].machine.copy()
    RemoveAcknowledgments().apply(machine)
    MoveDown().apply(machine)
    MoveUp().apply(machine)
    return machine


class TestMuxPreselection:
    def test_preselection_applies_on_alu1(self):
        machine = _machine("ALU1")
        report = MuxPreselection().apply(machine)
        assert report.applied
        # a moved mux selection appears in some earlier fragment's burst
        assert any("pre-selected" in note for note in report.details)

    def test_all_predecessor_paths_updated(self):
        """When prologue and steady tails join the same successor, the
        preselected edge must ride on BOTH tails (polarity safety)."""
        from repro.afsm.validate import check_machine

        machine = _machine("MUL1")  # has a first-iteration prologue
        MuxPreselection().apply(machine)
        check_machine(machine)

    def test_written_register_mux_not_preselected(self):
        machine = _machine("ALU2")
        MuxPreselection().apply(machine)
        from repro.afsm.validate import check_machine

        check_machine(machine)


class TestSignalSharing:
    def test_select_and_latch_share(self):
        machine = _machine("MUL2")
        before_outputs = len(machine.outputs())
        report = SignalSharing().apply(machine)
        assert report.applied
        assert len(machine.outputs()) < before_outputs
        assert any("&" in name for name in report.merged_signals)

    def test_merged_wire_keeps_all_actions(self):
        machine = _machine("MUL2")
        SignalSharing().apply(machine)
        for signal in machine.outputs():
            if "&" in signal.name:
                assert signal.action is not None and signal.action[0] == "multi"
                assert len(signal.action[1]) >= 2

    def test_live_ack_pairs_not_shared(self):
        machine = _machine("ALU1")
        SignalSharing().apply(machine)
        # go wires still have live acks: they may never merge
        names = {s.name for s in machine.outputs()}
        assert "go_add_req" in names
        assert "go_sub_req" in names

    def test_sharing_preserves_validity(self):
        from repro.afsm.validate import check_machine

        for fu in ("ALU1", "ALU2", "MUL1", "MUL2"):
            machine = _machine(fu)
            SignalSharing().apply(machine)
            check_machine(machine)
