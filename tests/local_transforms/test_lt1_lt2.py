"""LT1 move-up and LT2 move-down."""

import pytest

from repro.afsm import extract_controllers
from repro.afsm.signals import SignalKind
from repro.local_transforms import MoveDown, MoveUp, RemoveAcknowledgments
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg


@pytest.fixture
def alu1_after_lt4():
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    machine = design.controllers["ALU1"].machine.copy()
    RemoveAcknowledgments().apply(machine)
    MoveDown().apply(machine)
    return machine


class TestMoveUp:
    def test_done_rides_with_latch(self, alu1_after_lt4):
        """The paper's Figure 11 example: the global done (A1M+ in the
        paper; the ch0 event here) moves up to the latch burst."""
        machine = alu1_after_lt4
        report = MoveUp().apply(machine)
        assert report.applied
        latch_bursts = [
            transition
            for transition in machine.transitions()
            if transition.tags.get("node") == "A := Y + M1"
            and any("latch" in e.signal and e.rising for e in transition.output_burst.edges)
        ]
        assert latch_bursts
        for transition in latch_bursts:
            assert any(
                machine.signal(e.signal).kind is SignalKind.GLOBAL_READY
                for e in transition.output_burst.edges
            ), "the done signal must ride with the latch"

    def test_machine_still_valid(self, alu1_after_lt4):
        from repro.afsm.validate import check_machine

        MoveUp().apply(alu1_after_lt4)
        check_machine(alu1_after_lt4)


class TestMoveDown:
    def test_resets_leave_their_own_burst(self):
        cdfg = build_diffeq_cdfg()
        optimized = optimize_global(cdfg)
        design = extract_controllers(optimized.cdfg, optimized.plan)
        machine = design.controllers["MUL2"].machine.copy()
        RemoveAcknowledgments().apply(machine)
        report = MoveDown().apply(machine)
        assert report.applied
        # after packing, no transition with NO input activity at all
        # should carry only reset edges (they must ride real bursts)
        for transition in machine.transitions():
            untriggered = (
                not transition.input_burst.edges
                and not transition.input_burst.conditions
            )
            if untriggered and transition.output_burst.edges:
                assert transition.tags.get("micro") in (
                    "iterate",
                    "entry",
                    "join",
                    "skip",
                ), transition

    def test_go_reset_stays_before_its_ack_wait(self):
        cdfg = build_diffeq_cdfg()
        optimized = optimize_global(cdfg)
        design = extract_controllers(optimized.cdfg, optimized.plan)
        machine = design.controllers["MUL1"].machine.copy()
        RemoveAcknowledgments().apply(machine)
        MoveDown().apply(machine)
        # wherever go_mul_ack- is waited, go_mul_req- must have been
        # emitted on a strictly earlier transition of the fragment
        from repro.afsm.validate import check_machine

        check_machine(machine)
