"""Local transform scripts over whole designs."""

import pytest

from repro.afsm import extract_controllers
from repro.local_transforms import optimize_local
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE, build_local_sequence
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg, diffeq_reference


@pytest.fixture(scope="module")
def gt_design():
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    return extract_controllers(optimized.cdfg, optimized.plan)


class TestScript:
    def test_sequence_order(self):
        transforms = build_local_sequence()
        assert [t.name for t in transforms] == list(STANDARD_LOCAL_SEQUENCE)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_local_sequence(("LT9",))

    def test_original_design_untouched(self, gt_design):
        before = {
            fu: controller.state_count
            for fu, controller in gt_design.controllers.items()
        }
        optimize_local(gt_design)
        after = {
            fu: controller.state_count
            for fu, controller in gt_design.controllers.items()
        }
        assert before == after

    def test_reports_per_machine_per_transform(self, gt_design):
        result = optimize_local(gt_design)
        assert len(result.reports) == len(STANDARD_LOCAL_SEQUENCE) * len(gt_design.controllers)
        assert len(result.reports_for("ALU1")) == len(STANDARD_LOCAL_SEQUENCE)

    def test_every_controller_shrinks(self, gt_design):
        result = optimize_local(gt_design)
        for fu, controller in gt_design.controllers.items():
            optimized = result.design.controllers[fu]
            assert optimized.state_count < controller.state_count, fu

    def test_correctness_after_script(self, gt_design):
        result = optimize_local(gt_design)
        sim = simulate_system(result.design, seed=6)
        for register, value in diffeq_reference().items():
            assert sim.registers[register] == value

    def test_figure12_lt_row_shape(self, gt_design):
        """Figure 12: the LT row roughly halves the GT controllers."""
        result = optimize_local(gt_design)
        gt_total = sum(c.state_count for c in gt_design.controllers.values())
        lt_total = sum(c.state_count for c in result.design.controllers.values())
        assert lt_total < 0.75 * gt_total
