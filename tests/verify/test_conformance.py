"""Differential conformance checking: cases, levels, round-trips."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.transforms.scripts import STANDARD_SEQUENCE
from repro.verify import VerifyCase, check_case
from repro.workloads import workload_names

from tests.strategies import verify_cases


class TestVerifyCase:
    def test_defaults_are_the_full_scripts(self):
        case = VerifyCase(workload="diffeq")
        assert case.gts == tuple(STANDARD_SEQUENCE)
        assert case.lts == tuple(STANDARD_LOCAL_SEQUENCE)

    def test_transform_order_is_canonicalized(self):
        case = VerifyCase(workload="gcd", gts=("GT5", "GT1"), lts=("LT1", "LT4"))
        assert case.gts == ("GT1", "GT5")
        assert case.lts == ("LT4", "LT1")

    def test_dict_round_trip(self):
        case = VerifyCase(
            workload="fir",
            params={"taps": 3, "samples": 2},
            gts=("GT1", "GT4"),
            lts=("LT2",),
            delay_overrides=(("FMUL1", "*", (1.0, 5.0)),),
            seed=77,
        )
        assert VerifyCase.from_dict(case.to_dict()) == case

    def test_delay_model_carries_overrides(self):
        case = VerifyCase(workload="gcd", delay_overrides=(("SUB", "-", (2.0, 9.0)),))
        model = case.delay_model()
        assert model.operator_interval("SUB", "-") == (2.0, 9.0)


class TestCheckCase:
    @pytest.mark.parametrize("workload", sorted(workload_names()))
    def test_canonical_case_is_conformant(self, workload):
        result = check_case(VerifyCase(workload=workload))
        assert result.ok, f"{result.failure_level}: {result.message}"
        assert "token:base" in result.levels
        assert "system:extracted" in result.levels
        # one token level per applied GT, one system level per LT prefix
        assert result.levels[-1] == "system:" + "+".join(STANDARD_LOCAL_SEQUENCE)

    def test_untransformed_case(self):
        result = check_case(VerifyCase(workload="gcd", gts=(), lts=()))
        assert result.ok
        assert result.levels == ["token:base", "system:extracted"]

    def test_random_inputs_still_conform(self):
        result = check_case(
            VerifyCase(workload="gcd", params={"a0": 119, "b0": 17}, seed=3)
        )
        assert result.ok

    def test_bad_parameters_fail_without_raising(self):
        result = check_case(VerifyCase(workload="fir", params={"taps": 0}))
        assert not result.ok
        assert result.failure_level == "golden"

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(verify_cases("gcd"))
    def test_fuzzed_gcd_cases_conform(self, case):
        result = check_case(case)
        assert result.ok, f"{case}: {result.failure_level}: {result.message}"
