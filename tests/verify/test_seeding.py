"""Seed plumbing: every randomized run records its effective seed."""

from repro.afsm.extract import extract_controllers
from repro.channels import derive_channels
from repro.sim import NOMINAL, simulate_tokens
from repro.sim.seeding import resolve_seed
from repro.sim.system import ControllerSystem, simulate_system
from repro.workloads import build_workload


class TestResolveSeed:
    def test_nominal_has_no_rng(self):
        rng, seed = resolve_seed(NOMINAL)
        assert rng is None and seed is None

    def test_explicit_seed_is_recorded(self):
        rng, seed = resolve_seed(7)
        assert seed == 7
        assert rng is not None

    def test_none_draws_and_records_fresh_entropy(self):
        rng, seed = resolve_seed(None)
        assert isinstance(seed, int)
        assert rng is not None


class TestTokenSimSeeds:
    def test_result_records_seed(self, gcd):
        assert simulate_tokens(gcd, seed=13).seed == 13

    def test_nominal_records_none(self, gcd):
        assert simulate_tokens(gcd, seed=NOMINAL).seed is None

    def test_fresh_seed_reproduces_the_run(self, gcd):
        first = simulate_tokens(gcd, seed=None)
        assert first.seed is not None
        replay = simulate_tokens(gcd, seed=first.seed)
        assert replay.end_time == first.end_time
        assert replay.registers == first.registers


class TestSystemSeeds:
    def _design(self):
        cdfg = build_workload("gcd")
        return extract_controllers(cdfg, derive_channels(cdfg))

    def test_result_records_seed(self):
        result = simulate_system(self._design(), seed=21)
        assert result.seed == 21

    def test_fresh_seed_reproduces_the_run(self):
        design = self._design()
        first = ControllerSystem(design, seed=None).run()
        assert first.seed is not None
        replay = ControllerSystem(design, seed=first.seed).run()
        assert replay.end_time == first.end_time
        assert replay.registers == first.registers

    def test_nominal_is_deterministic(self):
        design = self._design()
        runs = {simulate_system(design, seed=NOMINAL).end_time for __ in range(2)}
        assert len(runs) == 1
        assert simulate_system(design, seed=NOMINAL).seed is None
