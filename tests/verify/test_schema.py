"""The normalized repro-report/v1 envelope (src/repro/verify/schema.py)."""

import json

import pytest

from repro.errors import VerificationError
from repro.verify.schema import (
    KINDS,
    SCHEMA,
    canonical_json,
    load_envelope,
    report_envelope,
    write_envelope,
)


class TestEnvelope:
    def test_shape(self):
        envelope = report_envelope("verify", [{"workload": "gcd"}])
        assert envelope == {
            "schema": SCHEMA,
            "kind": "verify",
            "reports": [{"workload": "gcd"}],
        }

    @pytest.mark.parametrize("kind", KINDS)
    def test_all_kinds_accepted(self, kind):
        assert load_envelope(report_envelope(kind, []))["kind"] == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(VerificationError, match="unknown report kind"):
            report_envelope("mystery", [])


class TestCanonicalJson:
    def test_sorted_indented_newline_terminated(self):
        text = canonical_json(report_envelope("faults", [{"b": 1, "a": 2}]))
        assert text.endswith("\n")
        assert text.index('"kind"') < text.index('"reports"') < text.index('"schema"')
        assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" == text

    def test_byte_stable(self):
        envelope = report_envelope("explore", [{"x": [1, 2], "y": None}])
        assert canonical_json(envelope) == canonical_json(envelope)


class TestRoundTrip:
    def test_dict_string_and_path_inputs_agree(self, tmp_path):
        reports = [{"workload": "fir", "conformant": True}]
        write_envelope(str(tmp_path / "r.json"), "verify", reports)
        from_path = load_envelope(str(tmp_path / "r.json"))
        from_string = load_envelope((tmp_path / "r.json").read_text())
        from_dict = load_envelope(report_envelope("verify", reports))
        assert from_path == from_string == from_dict
        assert canonical_json(from_path) == (tmp_path / "r.json").read_text()

    def test_legacy_bare_list_upgraded(self):
        envelope = load_envelope([{"workload": "gcd"}])
        assert envelope["schema"] == SCHEMA
        assert envelope["kind"] == "verify"
        assert envelope["reports"] == [{"workload": "gcd"}]

    def test_legacy_json_string_upgraded(self):
        envelope = load_envelope('[{"workload": "gcd"}]')
        assert envelope["kind"] == "verify"

    def test_wrong_schema_rejected(self):
        with pytest.raises(VerificationError, match="unknown report schema"):
            load_envelope({"schema": "repro-report/v0", "kind": "verify", "reports": []})

    def test_non_list_reports_rejected(self):
        with pytest.raises(VerificationError, match="must be a list"):
            load_envelope({"schema": SCHEMA, "kind": "verify", "reports": {}})

    def test_non_envelope_rejected(self):
        with pytest.raises(VerificationError, match="not a report envelope"):
            load_envelope(42)
