"""Mutation testing: an injected GT5 channel-merge bug must be caught.

GT5 merges two point-to-point channels only when
:meth:`ChannelElimination._never_concurrent` proves their events can
never be outstanding simultaneously.  These tests break that proof
(force it to say yes to everything) and assert the conformance harness
catches the resulting illegal merge *dynamically* — and shrinks it to
a minimal counterexample implicating GT5 alone.

FIR is the workload of choice: its multiplier fans out to two
consumers whose events genuinely overlap, so the broken proof merges
wires that are concurrently busy.  (On DIFFEQ the mutation is a no-op:
every same-source/same-destination merge there is legal anyway.)
"""

import pytest

from repro.transforms.gt5_channel_elimination import ChannelElimination
from repro.verify import VerifyCase, check_case, fuzz_workload, shrink_case


@pytest.fixture
def broken_gt5(monkeypatch):
    monkeypatch.setattr(
        ChannelElimination,
        "_never_concurrent",
        lambda self, cdfg, reach, left, right: True,
    )


FIR_CASE = VerifyCase(workload="fir", params={"taps": 4, "samples": 6})


def test_mutant_is_caught_at_the_gt5_token_level(broken_gt5):
    result = check_case(FIR_CASE)
    assert not result.ok
    assert result.failure_level == "token:GT5"
    assert "merged channel" in (result.message or "")


def test_mutant_fails_the_fuzz_campaign_with_shrunk_counterexample(broken_gt5):
    report = fuzz_workload("fir", runs=3, seed=0)
    assert not report.conformant
    assert report.failures
    failure = report.failures[0]
    assert failure.shrunk is not None
    # the minimized case implicates GT5 alone, with no delay overrides
    assert failure.shrunk["gts"] == ["GT5"]
    assert failure.shrunk["delay_overrides"] == []
    assert failure.shrunk_level == "token:GT5"


def test_shrinker_reduces_to_gt5_only(broken_gt5):
    shrunk, result = shrink_case(FIR_CASE)
    assert not result.ok
    assert shrunk.gts == ("GT5",)
    assert shrunk.lts == ()
    assert result.failure_level == "token:GT5"


def test_unmutated_fir_is_conformant():
    result = check_case(FIR_CASE)
    assert result.ok, f"{result.failure_level}: {result.message}"
