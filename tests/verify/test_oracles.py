"""Metamorphic per-transform oracles: clean runs pass, mutations fail."""

import pytest

from repro.afsm.extract import extract_controllers
from repro.cdfg.arc import Arc, ArcRole, control_tag
from repro.errors import VerificationError
from repro.local_transforms import optimize_local
from repro.local_transforms.base import LocalReport
from repro.transforms import optimize_global
from repro.transforms.base import TransformReport
from repro.verify import make_global_oracle, make_local_oracle
from repro.workloads import build_workload, workload_names


@pytest.mark.parametrize("workload", sorted(workload_names()))
def test_full_flow_passes_under_oracles(workload):
    cdfg = build_workload(workload)
    optimized = optimize_global(cdfg, oracle=make_global_oracle())
    design = extract_controllers(optimized.cdfg, optimized.plan)
    optimize_local(design, oracle=make_local_oracle())


def test_oracle_skips_unapplied_passes(diffeq):
    report = TransformReport("GT1", applied=False)
    # before/after wildly different, but the pass did nothing: no error
    make_global_oracle()(report, diffeq, build_workload("gcd"))


def test_gt1_oracle_rejects_added_ordering(diffeq_optimized):
    """GT1 may only relax the firing order; adding an arc must fail."""
    from repro.transforms.base import operation_order_pairs

    before = diffeq_optimized.cdfg
    pairs_before = operation_order_pairs(before)
    ops = [node.name for node in before.operation_nodes()]
    # find an arc whose addition genuinely orders two operations
    after = None
    for left in ops:
        for right in ops:
            if left == right or before.has_arc(left, right):
                continue
            candidate = before.copy()
            candidate.add_arc(Arc(left, right, frozenset({control_tag()})))
            if operation_order_pairs(candidate) - pairs_before:
                after = candidate
                break
        if after is not None:
            break
    assert after is not None
    report = TransformReport("GT1", applied=True)
    with pytest.raises(VerificationError, match=r"oracle\[GT1\]"):
        make_global_oracle()(report, before, after)


def test_gt2_oracle_rejects_any_order_change(diffeq):
    after = diffeq.copy()
    removable = next(
        arc
        for arc in after.arcs()
        if not arc.has_role(ArcRole.SCHEDULING) and not arc.backward
    )
    after.remove_arc(removable.src, removable.dst)
    report = TransformReport("GT2", applied=True)
    with pytest.raises(VerificationError, match=r"oracle\[GT2\]"):
        make_global_oracle()(report, diffeq, after)


def test_gt5_oracle_requires_a_plan(diffeq_optimized):
    report = TransformReport("GT5", applied=True)  # no channel_plan artifact
    cdfg = diffeq_optimized.cdfg
    with pytest.raises(VerificationError, match="no channel plan"):
        make_global_oracle()(report, cdfg, cdfg)


def test_local_oracle_rejects_lost_output_edge(gcd_optimized):
    design = extract_controllers(gcd_optimized.cdfg, gcd_optimized.plan)
    controller = next(iter(design.controllers.values()))
    before = controller.machine
    after = before.copy()
    victim = next(t for t in after.transitions() if t.output_burst.edges)
    dropped = victim.output_burst.edges[0]
    victim.output_burst = victim.output_burst.without_signal(dropped.signal)
    report = LocalReport("LT1", machine=after.name, applied=True)
    with pytest.raises(VerificationError, match=r"oracle\[LT1\]"):
        make_local_oracle()(report, before, after)


def test_local_oracle_allows_lt4_ack_removal(gcd_optimized):
    """LT4's own legitimate effect (dropping ack waits) must pass."""
    design = extract_controllers(gcd_optimized.cdfg, gcd_optimized.plan)
    optimize_local(design, enabled=("LT4",), oracle=make_local_oracle())
