"""Regressions for pipeline soundness bugs found by the frontend fuzz.

Each test pins one bug that ``tests/property/test_frontend_properties``
originally exposed: a frontend-subset program whose full GT+LT
synthesis was refuted (or crashed) by a transform mis-applying.  The
programs here are the minimized counterexamples; the unit assertions
target the specific applicability condition that was missing.
"""

import pytest

from repro.afsm.extract import extract_controllers
from repro.channels import derive_channels
from repro.frontend import compile_kernel, register_kernel, unregister_kernel
from repro.local_transforms import optimize_local
from repro.local_transforms.lt1_move_up import MoveUp
from repro.local_transforms.lt3_mux_preselection import MuxPreselection
from repro.transforms import optimize_global
from repro.transforms.gt1_loop_parallelism import LoopParallelism
from repro.transforms.scripts import STANDARD_SEQUENCE
from repro.verify.flow import prove_workload


@pytest.fixture
def registered():
    """Register compiled kernels for prove_workload; clean up after."""
    names = []

    def _register(source, bounds, name):
        kernel = compile_kernel(source, bounds=bounds)
        names.append(register_kernel(kernel, name=name))
        return names[-1]

    yield _register
    for name in names:
        unregister_kernel(name)


# ----------------------------------------------------------------------
# LT1: a done whose channel guards a remote condition sample must not
# be hoisted to the latch burst (the remote choice state would read the
# condition register while it is still being written).
# ----------------------------------------------------------------------
CROSS_CONDITION = """
def fuzzed(a: float = 0.5, b: float = 0.5):
    u = a + a
    if a < 0.5:
        u = a * a
"""


class TestLT1ConditionGuard:
    def _design(self):
        kernel = compile_kernel(CROSS_CONDITION, bounds={"ALU": 1, "MUL": 1})
        cdfg = kernel.build()
        return extract_controllers(cdfg, derive_channels(cdfg))

    def test_extraction_marks_condition_channel(self):
        design = self._design()
        guarded = [
            signal.name
            for controller in design.controllers.values()
            for signal in controller.machine.signals()
            if signal.guards_condition
        ]
        assert guarded, "condition-delivering channel must set guards_condition"

    def test_lt1_keeps_guarded_done_in_place(self):
        design = self._design()
        kept = []
        for controller in design.controllers.values():
            machine = controller.machine.copy()
            report = MoveUp().apply(machine)
            for signal in machine.signals():
                if signal.guards_condition:
                    assert not any(
                        signal.name in moved for moved in report.moved_edges
                    ), f"LT1 hoisted condition-guarding done {signal.name}"
            kept.extend(
                entry for entry in report.provenance
                if entry.kind == "edge-kept-for-condition"
            )
        assert kept, "LT1 must record the exemption on the sender machine"

    def test_full_sequence_proves(self, registered):
        name = registered(CROSS_CONDITION, {"ALU": 1, "MUL": 1}, "_lt1_guard")
        assert prove_workload(name).proved


# ----------------------------------------------------------------------
# LT3: after LT4 strips a latch ack, the capture window is invisible to
# the control flow; preselecting that register's input mux (e.g. into a
# loop-head burst) can re-steer it mid-capture.
# ----------------------------------------------------------------------
UNSEQUENCED_LATCH = """
def fuzzed(a: float = 0.5, b: float = 0.5):
    u = b + b
    i = 0.0
    while i < 1.0:
        v = b + 0.5
        i = i + 1.0
"""


class TestLT3UnsequencedLatchGuard:
    def _machine_after_lt4_lt2(self):
        kernel = compile_kernel(UNSEQUENCED_LATCH, bounds={"ALU": 1, "MUL": 1})
        optimized = optimize_global(kernel.build(), enabled=tuple(STANDARD_SEQUENCE))
        design = extract_controllers(optimized.cdfg, optimized.plan)
        design = optimize_local(design, enabled=("LT4", "LT2")).design
        return design.controllers["ALU1"].machine

    def test_stripped_latch_registers_detected(self):
        machine = self._machine_after_lt4_lt2()
        unsequenced = MuxPreselection._unsequenced_latch_registers(machine)
        assert "i" in unsequenced

    def test_lt3_refuses_unsequenced_register_mux(self):
        machine = self._machine_after_lt4_lt2().copy()
        report = MuxPreselection().apply(machine)
        assert not any("reg_i_sel" in moved for moved in report.moved_edges), (
            "LT3 preselected register i's mux although its latch ack is gone"
        )

    def test_lt4_lt2_lt3_proves(self, registered):
        name = registered(UNSEQUENCED_LATCH, {"ALU": 1, "MUL": 1}, "_lt3_guard")
        assert prove_workload(name, lts=("LT4", "LT2", "LT3")).proved


# ----------------------------------------------------------------------
# GT5: merging a cross-iteration (backward) arc and a same-iteration
# (forward) arc onto one wire is unsupported when a single receiver
# holds both — the receiver cannot tell the pre-enabling startup
# transition from a live one.
# ----------------------------------------------------------------------
MIXED_ARCS = """
def fuzzed(a: float = 1.0, b: float = 0.5):
    w = 2.0 + 2.0
    z = 1.0 - b
    i = 0.0
    while i < 1.0:
        v = z + 2.0
        z = 3.0 * a
        i = i + 1.0
"""


class TestGT5MixedReceiverSplit:
    def test_no_channel_mixes_per_receiver(self):
        kernel = compile_kernel(MIXED_ARCS, bounds={"ALU": 1, "MUL": 2})
        optimized = optimize_global(kernel.build(), enabled=tuple(STANDARD_SEQUENCE))
        cdfg, plan = optimized.cdfg, optimized.plan
        for channel in plan.channels:
            flags = {}
            for src, dst in channel.arcs:
                flags.setdefault(cdfg.fu_of(dst), set()).add(
                    cdfg.arc(src, dst).backward
                )
            for fu, seen in flags.items():
                assert len(seen) == 1, (
                    f"channel {channel.name}: receiver {fu} mixes backward "
                    "and forward arcs"
                )

    def test_mixed_arc_program_proves(self, registered):
        name = registered(MIXED_ARCS, {"ALU": 1, "MUL": 2}, "_gt5_mixed")
        assert prove_workload(name).proved


# ----------------------------------------------------------------------
# GT1: a loop-body register written by a single node nothing else in
# the body touches has no backward-arc candidates (src == dst), yet its
# write stream still races across overlapped iterations.
# ----------------------------------------------------------------------
LONE_WRITER = """
def fuzzed(a: float = 0.5, b: float = 2.0):
    i = 0.0
    while i < 2.0:
        z = 2.0 * 0.5
        u = a * 1.0
        i = i + 1.0
"""


class TestGT1LoneWriterSerialization:
    def test_lone_writes_serialized_through_endloop(self):
        kernel = compile_kernel(LONE_WRITER, bounds={"ALU": 1, "MUL": 1})
        cdfg = kernel.build()
        report = LoopParallelism().apply(cdfg)
        serialized = {
            entry.detail["variable"]
            for entry in report.provenance
            if entry.kind == "lone-write-serialized"
        }
        # z's write is already ordered through the unit schedule
        # (z -> u on MUL1, then u -> ENDLOOP), so only u needs the arc
        assert "u" in serialized

    def test_lone_writer_program_proves(self, registered):
        name = registered(LONE_WRITER, {"ALU": 1, "MUL": 1}, "_gt1_lone")
        assert prove_workload(name).proved

    def test_builtin_loops_unaffected(self):
        """diffeq's body registers all have readers: no lone-writer
        arcs may appear (they would change the published channel
        structure)."""
        from repro.workloads import build_diffeq_cdfg

        report = LoopParallelism().apply(build_diffeq_cdfg())
        assert not any(
            entry.kind == "lone-write-serialized" for entry in report.provenance
        )
