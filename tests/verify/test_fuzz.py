"""Fuzzing campaigns: determinism, budgets, reports, shrinking."""

import json

import pytest

from repro.verify import (
    MINIMAL_PARAMS,
    PARAM_SPACES,
    VerifyCase,
    fuzz_workload,
    load_report,
    random_case,
    shrink_case,
)
from repro.workloads import workload_names
import random


class TestRandomCase:
    def test_case_zero_equivalent_is_canonical(self):
        case = random_case("diffeq", random.Random(0), full=True)
        assert case.params == {}
        assert case.delay_overrides == ()

    def test_same_seed_same_cases(self):
        draws_a = [random_case("ewf", random.Random(5)) for __ in range(3)]
        draws_b = [random_case("ewf", random.Random(5)) for __ in range(3)]
        assert draws_a == draws_b

    def test_overrides_are_operator_specific(self):
        rng = random.Random(1)
        for __ in range(50):
            case = random_case("fir", rng)
            for __fu, operator, __interval in case.delay_overrides:
                assert operator is not None

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            random_case("nonexistent", random.Random(0))

    def test_every_workload_has_a_param_space(self):
        assert set(PARAM_SPACES) == set(workload_names())
        assert set(MINIMAL_PARAMS) == set(workload_names())


class TestFuzzWorkload:
    def test_small_campaign_is_conformant(self):
        report = fuzz_workload("diffeq", runs=4, seed=0)
        assert report.conformant
        assert report.runs_executed == 4
        assert report.passed == 4
        assert "token:base" in report.levels_checked

    def test_campaign_is_deterministic(self):
        one = fuzz_workload("gcd", runs=4, seed=11).to_dict()
        two = fuzz_workload("gcd", runs=4, seed=11).to_dict()
        one.pop("duration"), two.pop("duration")
        assert one == two

    def test_budget_stops_early(self):
        report = fuzz_workload("ewf", runs=10_000, seed=0, budget=0.3)
        assert report.runs_executed < 10_000
        assert report.runs_requested == 10_000

    def test_report_json_round_trip(self, tmp_path):
        report = fuzz_workload("fir", runs=2, seed=3)
        target = tmp_path / "report.json"
        report.write(str(target))
        loaded = load_report(str(target))
        assert loaded.to_dict() == report.to_dict()
        assert json.loads(target.read_text())["workload"] == "fir"

    def test_summary_mentions_verdict(self):
        report = fuzz_workload("gcd", runs=2, seed=0)
        assert "CONFORMANT" in report.summary()
        assert "gcd" in report.summary()


class TestShrink:
    def test_passing_case_returned_unchanged(self):
        case = VerifyCase(workload="gcd", seed=42)
        shrunk, result = shrink_case(case)
        assert shrunk == case
        assert result.ok
