"""The flow-equivalence proof engine (src/repro/verify/flow.py)."""

import json

import pytest

from repro.errors import FlowRefutedError
from repro.verify.flow import (
    FlowObligation,
    FlowProof,
    FlowReport,
    conflict_races,
    check_global_flow,
    load_flow_report,
    make_flow_global_oracle,
    prove_workload,
    replay_flow_report,
)
from repro.workloads import workload_names

ALL_WORKLOADS = sorted(workload_names())


class TestProveWorkload:
    @pytest.fixture(scope="class")
    def reports(self):
        return {name: prove_workload(name) for name in ALL_WORKLOADS}

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_workload_proves(self, reports, name):
        report = reports[name]
        assert report.error == ""
        assert report.proved, report.summary()

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_pass_application_certified(self, reports, name):
        """One certificate per GT/LT application plus two checkpoints."""
        report = reports[name]
        stages = [proof.stage for proof in report.proofs]
        for gt in report.gts:
            assert gt in stages
        machines = sum(1 for s in stages if s == report.lts[0])
        for lt in report.lts:
            assert stages.count(lt) == machines
        assert "extract" in stages
        assert stages[-1] == "design"

    def test_no_op_passes_recorded(self, reports):
        # gcd has GT passes with nothing to do; they still get a
        # (vacuous) certificate so the count is auditable
        assert any(p.verdict == "no-op" for p in reports["gcd"].proofs)

    @pytest.mark.parametrize("name", ["diffeq", "fir"])
    def test_byte_deterministic(self, reports, name):
        assert prove_workload(name).to_json() == reports[name].to_json()

    def test_replay_is_byte_identical(self, reports):
        identical, message = replay_flow_report(reports["diffeq"].to_dict())
        assert identical, message
        assert "byte-identically" in message

    def test_round_trip(self, reports, tmp_path):
        report = reports["ewf"]
        assert FlowReport.from_dict(report.to_dict()).to_json() == report.to_json()
        path = tmp_path / "ewf.json"
        report.write(str(path))
        assert load_flow_report(str(path)).to_json() == report.to_json()

    def test_filtered_sequences(self):
        report = prove_workload("gcd", gts=("GT1", "GT2"), lts=("LT1",))
        assert report.gts == ("GT1", "GT2")
        assert report.lts == ("LT1",)
        assert report.proved

    def test_unknown_workload_lands_in_error(self):
        report = prove_workload("nonexistent")
        assert report.error != ""
        assert not report.proved


class TestMinimizeProofs:
    def test_minimize_certificates_prove(self):
        report = prove_workload("diffeq", minimize=True)
        assert report.proved, report.summary()
        minimize_proofs = [p for p in report.proofs if p.stage == "minimize"]
        assert len(minimize_proofs) == 4  # one per controller
        assert any(p.verdict == "proved" for p in minimize_proofs)
        # the design checkpoint still matches the golden reference
        assert report.proofs[-1].stage == "design"
        assert report.proofs[-1].verdict == "proved"


class TestRefutation:
    def test_unsound_gt5_is_refuted(self, monkeypatch):
        """Merging channels that CAN be concurrently occupied must
        refute the GT5 occupancy obligation."""
        from repro.transforms.gt5_channel_elimination import ChannelElimination

        monkeypatch.setattr(
            ChannelElimination,
            "_never_concurrent",
            lambda self, cdfg, reach, left, right: True,
        )
        report = prove_workload("fir")
        assert not report.proved
        gt5 = next(p for p in report.proofs if p.stage == "GT5")
        assert gt5.verdict == "refuted"
        assert gt5.counterexample is not None
        refuted = {o.name for o in gt5.refuted_obligations()}
        assert refuted  # occupancy and/or streams, with a concrete schedule

    def test_unsound_gt3_is_refuted(self, monkeypatch):
        """Dropping a constraint arc without a timing witness must
        refute the timing-witnesses obligation."""
        import repro.transforms.gt3_relative_timing as gt3

        monkeypatch.setattr(
            gt3, "relative_arc_dominates", lambda *args, **kwargs: True
        )
        report = prove_workload("diffeq", gts=("GT3",), lts=())
        assert not report.proved
        proof = next(p for p in report.proofs if p.stage == "GT3")
        assert proof.verdict == "refuted"
        assert any(o.name == "timing-witnesses" for o in proof.refuted_obligations())

    def test_strict_oracle_raises(self, monkeypatch):
        from repro.transforms import optimize_global
        from repro.transforms.gt5_channel_elimination import ChannelElimination
        from repro.workloads import build_fir_cdfg

        monkeypatch.setattr(
            ChannelElimination,
            "_never_concurrent",
            lambda self, cdfg, reach, left, right: True,
        )
        with pytest.raises(FlowRefutedError, match="flow"):
            optimize_global(build_fir_cdfg(), oracle=make_flow_global_oracle())


class TestConflictRaces:
    def test_input_diffeq_is_race_free(self, diffeq):
        assert conflict_races(diffeq) == []

    def test_races_are_canonical_tuples(self, diffeq_optimized):
        for kind, var, first, second in conflict_races(diffeq_optimized.cdfg):
            assert kind in ("write-write", "read-write")
            assert isinstance(var, str)
            assert (first, second) == tuple(sorted((first, second)))


class TestCertificateShape:
    def test_obligation_round_trip(self):
        obligation = FlowObligation("order", "proved", "relaxation only", ["a -> b"])
        assert FlowObligation.from_dict(obligation.to_dict()) == obligation

    def test_proof_failure_renders_first_refuted(self):
        proof = FlowProof(
            "GT3",
            "cdfg",
            0,
            "refuted",
            [
                FlowObligation("order", "proved"),
                FlowObligation("timing-witnesses", "refuted", "no witness"),
            ],
        )
        assert proof.failure() == "timing-witnesses: no witness"
        assert not proof.proved

    def test_report_summary_mentions_refutations(self):
        report = FlowReport(
            workload="x",
            proofs=[
                FlowProof(
                    "GT1",
                    "cdfg",
                    0,
                    "refuted",
                    [FlowObligation("order", "refuted", "tightened")],
                )
            ],
        )
        assert "REFUTED GT1[cdfg]: order: tightened" in report.summary()

    def test_proofs_json_is_sorted_and_newline_terminated(self):
        report = prove_workload("gcd", gts=(), lts=())
        text = report.to_json()
        assert text.endswith("\n")
        assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" == text
