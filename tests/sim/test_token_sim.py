"""CDFG token simulation semantics."""

import pytest

from repro.cdfg import Arc, CdfgBuilder
from repro.cdfg.arc import control_tag
from repro.errors import ChannelSafetyError, SimulationError
from repro.sim import simulate_tokens
from repro.sim.token_sim import TokenSimulator
from repro.workloads import (
    build_diffeq_cdfg,
    build_ewf_cdfg,
    build_gcd_cdfg,
    diffeq_reference,
    ewf_reference,
    gcd_reference,
)


class TestSemantics:
    @pytest.mark.parametrize("seed", [None, 0, 1, 2])
    def test_diffeq_matches_reference(self, diffeq, seed):
        result = simulate_tokens(diffeq, seed=seed)
        for register, value in diffeq_reference().items():
            assert result.registers[register] == value

    def test_loop_iteration_count(self, diffeq):
        result = simulate_tokens(diffeq)
        assert result.loop_iterations["LOOP"] == 8  # (1.0 - 0.0) / 0.125

    def test_parameterized_diffeq(self):
        cdfg = build_diffeq_cdfg({"dx": 0.5, "a": 2.0, "y0": 3.0})
        result = simulate_tokens(cdfg)
        expected = diffeq_reference(dx=0.5, a=2.0, y0=3.0)
        for register, value in expected.items():
            assert result.registers[register] == value

    def test_gcd_branches_both_taken(self, gcd):
        result = simulate_tokens(gcd)
        assert result.registers["A"] == gcd_reference()["A"]
        # both branch bodies fired at least once for 84, 36
        assert result.firing_count("A := A - B") >= 1
        assert result.firing_count("B := B - A") >= 1

    def test_zero_iteration_loop(self):
        cdfg = build_diffeq_cdfg({"x0": 5.0, "a": 1.0})  # C starts false
        result = simulate_tokens(cdfg)
        assert result.loop_iterations.get("LOOP", 0) == 0
        assert result.registers["X"] == 5.0

    def test_every_node_fires_once_per_iteration(self, ewf):
        result = simulate_tokens(ewf)
        iterations = result.loop_iterations["LOOP"]
        assert result.firing_count("Y := T1 + T2") == iterations


class TestChannelSafety:
    def test_clean_designs_have_no_violations(self, diffeq, gcd, ewf):
        for cdfg in (diffeq, gcd, ewf):
            result = simulate_tokens(cdfg, seed=1)
            assert result.violations == []

    def test_unsafe_graph_detected(self):
        """Removing GT1-D style protection and over-fanning a wire is
        caught: two tokens on one arc raise ChannelSafetyError."""
        builder = CdfgBuilder("unsafe")
        with builder.loop("C", fu="FAST"):
            builder.op("T := T + K", fu="FAST")
            builder.op("C := T < L", fu="FAST")
            builder.op("S := S * K", fu="SLOW")
        cdfg = builder.build(initial={"T": 0, "C": 1, "S": 1, "K": 2, "L": 50})
        # drop the ENDLOOP synchronization of the slow unit entirely:
        # the fast unit now laps it, double-pumping LOOP -> S := S * K
        cdfg.remove_arc("S := S * K", "ENDLOOP")
        with pytest.raises(ChannelSafetyError):
            simulate_tokens(
                cdfg,
                seed=0,
                delay_model=__import__("repro.timing", fromlist=["DelayModel"]).DelayModel().with_override(
                    "SLOW", "*", (60.0, 70.0)
                ),
            )

    def test_non_strict_collects_violations(self):
        builder = CdfgBuilder("unsafe")
        with builder.loop("C", fu="FAST"):
            builder.op("T := T + K", fu="FAST")
            builder.op("C := T < L", fu="FAST")
            builder.op("S := S * K", fu="SLOW")
        cdfg = builder.build(initial={"T": 0, "C": 1, "S": 1, "K": 2, "L": 50})
        cdfg.remove_arc("S := S * K", "ENDLOOP")
        from repro.timing import DelayModel

        slow = DelayModel().with_override("SLOW", "*", (60.0, 70.0))
        result = simulate_tokens(cdfg, seed=0, strict=False, delay_model=slow)
        assert result.violations


class TestErrorHandling:
    def test_deadlock_reported(self, diffeq):
        broken = diffeq.copy()
        # strand the ALU1 controller: A := Y + M1 waits forever
        broken.add_arc(Arc("END", "A := Y + M1", frozenset({control_tag()})))
        with pytest.raises(SimulationError) as info:
            simulate_tokens(broken)
        assert "deadlock" in str(info.value)

    def test_write_to_input_rejected(self):
        builder = CdfgBuilder("bad")
        builder.input("k", 1.0)
        builder.op("k := A + B", fu="ALU")
        cdfg = builder.build(initial={"A": 1, "B": 2})
        with pytest.raises(SimulationError):
            simulate_tokens(cdfg)

    def test_firing_records(self, diffeq):
        result = simulate_tokens(diffeq)
        for firing in result.firings:
            assert firing.end >= firing.start >= 0.0
