"""VCD waveform export."""

import io

import pytest

from repro import synthesize
from repro.sim.system import ControllerSystem
from repro.sim.trace import VcdTracer, trace_to_vcd
from repro.workloads import build_gcd_cdfg, gcd_reference


@pytest.fixture(scope="module")
def design():
    return synthesize(build_gcd_cdfg())


class TestVcd:
    def test_trace_does_not_perturb_results(self, design):
        from repro.sim.system import simulate_system

        plain = simulate_system(design, seed=4)
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        traced = tracer.run()
        assert traced.registers == plain.registers
        assert traced.end_time == plain.end_time

    def test_changes_recorded(self, design):
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        tracer.run()
        assert len(tracer.changes) > 50
        scopes = {scope for scope, __ in tracer._identifiers}
        assert scopes == {"wires", "registers", "states"}

    def test_vcd_format(self, design):
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        tracer.run()
        buffer = io.StringIO()
        tracer.write(buffer)
        text = buffer.getvalue()
        assert text.startswith("$date")
        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$var wire 1 " in text
        # timestamps are monotone
        stamps = [int(line[1:]) for line in text.splitlines() if line.startswith("#")]
        assert stamps == sorted(stamps)

    def test_trace_to_vcd_file(self, design, tmp_path):
        path = tmp_path / "gcd.vcd"
        result = trace_to_vcd(ControllerSystem(design, seed=4), str(path))
        assert result.registers["A"] == gcd_reference()["A"]
        assert path.stat().st_size > 500

    def test_register_values_in_dump(self, design, tmp_path):
        path = tmp_path / "gcd.vcd"
        trace_to_vcd(ControllerSystem(design, seed=4), str(path))
        text = path.read_text()
        assert "r12.0" in text  # the final gcd value was latched

def _parse_vcd(text):
    """Minimal VCD reader: (vars, initial values, timed changes)."""
    variables = {}  # identifier -> (type, name)
    initial = {}
    changes = []  # (time, identifier, value)
    lines = iter(text.splitlines())
    in_header = True
    in_dumpvars = False
    time = None
    for line in lines:
        line = line.strip()
        if in_header:
            if line.startswith("$var "):
                __, var_type, __, identifier, name, __ = line.split(" ")
                variables[identifier] = (var_type, name)
            elif line == "$enddefinitions $end":
                in_header = False
            continue
        if line == "$dumpvars":
            in_dumpvars = True
            continue
        if line == "$end":
            in_dumpvars = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
            continue
        if line[0] in "01":
            identifier, value = line[1:], line[0]
        else:
            value, identifier = line.split(" ")
        if in_dumpvars:
            initial[identifier] = value
        else:
            changes.append((time, identifier, value))
    return variables, initial, changes


class TestVcdParseBack:
    """The satellite bugfix: states are $var string (not real) and the
    $dumpvars block covers every variable, not just wires."""

    @pytest.fixture(scope="class")
    def vcd(self, design):
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        tracer.run()
        buffer = io.StringIO()
        tracer.write(buffer)
        return _parse_vcd(buffer.getvalue())

    def test_var_types(self, vcd):
        variables, __, __ = vcd
        types = {}
        for var_type, name in variables.values():
            types.setdefault(var_type, []).append(name)
        assert set(types) == {"wire", "string", "real"}
        assert "CMP" in types["string"]  # controller state
        assert "A" in types["real"]  # register

    def test_dumpvars_covers_every_variable(self, vcd):
        variables, initial, __ = vcd
        assert set(initial) == set(variables)

    def test_initial_values_typed_correctly(self, vcd):
        variables, initial, __ = vcd
        for identifier, value in initial.items():
            var_type = variables[identifier][0]
            if var_type == "wire":
                assert value == "0"
            elif var_type == "string":
                assert value.startswith("s")
            else:
                assert value.startswith("r")
                float(value[1:])  # parses as a number

    def test_state_changes_are_strings(self, vcd):
        variables, __, changes = vcd
        state_ids = {i for i, (t, __) in variables.items() if t == "string"}
        state_changes = [(t, v) for t, i, v in changes if i in state_ids]
        assert state_changes
        for __, value in state_changes:
            assert value.startswith("s")
            assert " " not in value

    def test_changes_only_reference_declared_ids(self, vcd):
        variables, __, changes = vcd
        assert {identifier for __, identifier, __ in changes} <= set(variables)
