"""VCD waveform export."""

import io

import pytest

from repro import synthesize
from repro.sim.system import ControllerSystem
from repro.sim.trace import VcdTracer, trace_to_vcd
from repro.workloads import build_gcd_cdfg, gcd_reference


@pytest.fixture(scope="module")
def design():
    return synthesize(build_gcd_cdfg())


class TestVcd:
    def test_trace_does_not_perturb_results(self, design):
        from repro.sim.system import simulate_system

        plain = simulate_system(design, seed=4)
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        traced = tracer.run()
        assert traced.registers == plain.registers
        assert traced.end_time == plain.end_time

    def test_changes_recorded(self, design):
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        tracer.run()
        assert len(tracer.changes) > 50
        scopes = {scope for scope, __ in tracer._identifiers}
        assert scopes == {"wires", "registers", "states"}

    def test_vcd_format(self, design):
        tracer = VcdTracer(ControllerSystem(design, seed=4))
        tracer.run()
        buffer = io.StringIO()
        tracer.write(buffer)
        text = buffer.getvalue()
        assert text.startswith("$date")
        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$var wire 1 " in text
        # timestamps are monotone
        stamps = [int(line[1:]) for line in text.splitlines() if line.startswith("#")]
        assert stamps == sorted(stamps)

    def test_trace_to_vcd_file(self, design, tmp_path):
        path = tmp_path / "gcd.vcd"
        result = trace_to_vcd(ControllerSystem(design, seed=4), str(path))
        assert result.registers["A"] == gcd_reference()["A"]
        assert path.stat().st_size > 500

    def test_register_values_in_dump(self, design, tmp_path):
        path = tmp_path / "gcd.vcd"
        trace_to_vcd(ControllerSystem(design, seed=4), str(path))
        text = path.read_text()
        assert "r12.0" in text  # the final gcd value was latched
