"""AFSM-level system simulation."""

import pytest

from repro.afsm import extract_controllers
from repro.channels import derive_channels
from repro.local_transforms import optimize_local
from repro.sim.controller import GlobalWire
from repro.sim.system import ControllerSystem, simulate_system
from repro.timing import DelayModel
from repro.transforms import optimize_global
from repro.workloads import (
    build_diffeq_cdfg,
    build_ewf_cdfg,
    build_gcd_cdfg,
    diffeq_reference,
    ewf_reference,
    gcd_reference,
)
from repro.errors import ChannelSafetyError, SimulationError


def _levels(cdfg):
    unopt = extract_controllers(cdfg, derive_channels(cdfg))
    optimized = optimize_global(cdfg)
    gt = extract_controllers(optimized.cdfg, optimized.plan)
    lt = optimize_local(gt).design
    return {"unopt": unopt, "gt": gt, "gt+lt": lt}


class TestEndToEnd:
    @pytest.mark.parametrize("level", ["unopt", "gt", "gt+lt"])
    def test_diffeq(self, level):
        designs = _levels(build_diffeq_cdfg())
        result = simulate_system(designs[level], seed=13)
        for register, value in diffeq_reference().items():
            assert result.registers[register] == value
        assert not result.hazards
        assert not result.violations

    def test_gcd_with_conditionals(self):
        designs = _levels(build_gcd_cdfg(270, 192))
        for level, design in designs.items():
            result = simulate_system(design, seed=2)
            assert result.registers["A"] == 6, level

    def test_ewf(self):
        designs = _levels(build_ewf_cdfg(n=5))
        expected = ewf_reference(n=5)
        for level, design in designs.items():
            result = simulate_system(design, seed=5)
            for register, value in expected.items():
                assert result.registers[register] == value, (level, register)

    def test_local_transforms_speed_up(self):
        designs = _levels(build_diffeq_cdfg())
        slow = simulate_system(designs["gt"], seed=3).end_time
        fast = simulate_system(designs["gt+lt"], seed=3).end_time
        assert fast < slow

    def test_deterministic_without_seed_variation(self):
        designs = _levels(build_diffeq_cdfg())
        first = simulate_system(designs["gt"], seed=17)
        second = simulate_system(designs["gt"], seed=17)
        assert first.end_time == second.end_time
        assert first.registers == second.registers

    def test_transition_counts_reported(self):
        designs = _levels(build_diffeq_cdfg())
        result = simulate_system(designs["gt"], seed=1)
        assert set(result.transitions_taken) == {"ALU1", "ALU2", "MUL1", "MUL2"}
        assert all(count > 0 for count in result.transitions_taken.values())

    def test_wire_event_counts(self):
        designs = _levels(build_diffeq_cdfg())
        result = simulate_system(designs["gt"], seed=1)
        assert sum(result.wire_events.values()) > 0


class TestGlobalWire:
    def test_direction_aware_queues(self):
        wire = GlobalWire("w", ["X"])
        wire.emit(0.0, rising=False)
        assert not wire.available("X", rising=True)
        assert wire.available("X", rising=False)
        wire.emit(0.0, rising=True)
        wire.consume("X", rising=True)
        assert wire.available("X", rising=False)

    def test_double_same_direction_violation(self):
        wire = GlobalWire("w", ["X"])
        wire.emit(0.0, rising=True)
        with pytest.raises(ChannelSafetyError):
            wire.emit(1.0, rising=True)

    def test_non_strict_records(self):
        wire = GlobalWire("w", ["X"], strict=False)
        wire.emit(0.0, rising=True)
        wire.emit(1.0, rising=True)
        assert wire.violations

    def test_ddc_debt_absorbs_future_event(self):
        wire = GlobalWire("w", ["X"])
        wire.consume_ddc("X", rising=False)  # fires before the event
        wire.emit(0.0, rising=False)  # absorbed silently
        assert not wire.available("X", rising=False)

    def test_consume_missing_raises(self):
        wire = GlobalWire("w", ["X"])
        with pytest.raises(SimulationError):
            wire.consume("X", rising=True)


class TestRobustness:
    @pytest.mark.parametrize("seed", range(12))
    def test_gt_lt_many_seeds(self, seed):
        designs = _levels(build_diffeq_cdfg())
        result = simulate_system(designs["gt+lt"], seed=seed)
        for register, value in diffeq_reference().items():
            assert result.registers[register] == value

    def test_slow_multipliers(self):
        designs = _levels(build_diffeq_cdfg())
        slow = DelayModel().with_override("MUL1", "*", (20.0, 30.0))
        result = simulate_system(designs["gt+lt"], delays=slow, seed=1)
        for register, value in diffeq_reference().items():
            assert result.registers[register] == value
