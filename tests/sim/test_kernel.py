"""Event kernel determinism and limits."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventKernel


class TestKernel:
    def test_time_ordering(self):
        kernel = EventKernel()
        log = []
        kernel.schedule(3.0, lambda: log.append("late"))
        kernel.schedule(1.0, lambda: log.append("early"))
        kernel.schedule(2.0, lambda: log.append("middle"))
        kernel.run()
        assert log == ["early", "middle", "late"]

    def test_ties_broken_by_insertion(self):
        kernel = EventKernel()
        log = []
        for i in range(5):
            kernel.schedule(1.0, lambda i=i: log.append(i))
        kernel.run()
        assert log == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        kernel = EventKernel()
        log = []

        def outer():
            log.append("outer")
            kernel.schedule(0.5, lambda: log.append("inner"))

        kernel.schedule(1.0, outer)
        end = kernel.run()
        assert log == ["outer", "inner"]
        assert end == 1.5

    def test_negative_delay_rejected(self):
        kernel = EventKernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-1.0, lambda: None)

    def test_event_limit(self):
        kernel = EventKernel()

        def forever():
            kernel.schedule(1.0, forever)

        kernel.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            kernel.run(max_events=100)

    def test_event_limit_is_per_run(self):
        # the budget bounds each run() call, not the kernel's lifetime:
        # a kernel reused across runs must not shrink later budgets
        kernel = EventKernel()
        for _ in range(3):
            for i in range(40):
                kernel.schedule(float(i), lambda: None)
            kernel.run(max_events=50)
        assert kernel.events_processed == 120

    def test_events_processed_stays_cumulative(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run(max_events=10)
        kernel.schedule(1.0, lambda: None)
        kernel.run(max_events=10)
        assert kernel.events_processed == 2

    def test_now_advances(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(2.5, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [2.5]
