"""Datapath model unit tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.datapath import Datapath
from repro.sim.kernel import EventKernel


@pytest.fixture
def datapath():
    kernel = EventKernel()
    dp = Datapath(kernel, initial_registers={"A": 3.0, "B": 4.0}, inputs={"k": 2.0})
    return kernel, dp


def _run(kernel):
    return kernel.run()


class TestSourceMux:
    def test_select_then_compute(self, datapath):
        kernel, dp = datapath
        done = []
        dp.request(("src_mux", "ALU", 0, ("reg", "A")), lambda: done.append("m0"))
        dp.request(("src_mux", "ALU", 1, ("reg", "B")), lambda: done.append("m1"))
        _run(kernel)
        dp.request(("fu_go", "ALU", "+"), lambda: done.append("go"))
        _run(kernel)
        assert dp.fu_outputs["ALU"] == 7.0
        assert done == ["m0", "m1", "go"]

    def test_constant_operand(self, datapath):
        kernel, dp = datapath
        dp.request(("src_mux", "ALU", 0, ("reg", "A")), lambda: None)
        dp.request(("src_mux", "ALU", 1, ("const", 10.0)), lambda: None)
        _run(kernel)
        dp.request(("fu_go", "ALU", "*"), lambda: None)
        _run(kernel)
        assert dp.fu_outputs["ALU"] == 30.0


class TestRegisterWrite:
    def test_latch_from_fu(self, datapath):
        kernel, dp = datapath
        dp.request(("src_mux", "ALU", 0, ("reg", "A")), lambda: None)
        dp.request(("src_mux", "ALU", 1, ("reg", "B")), lambda: None)
        _run(kernel)
        dp.request(("fu_go", "ALU", "-"), lambda: None)
        _run(kernel)
        dp.request(("reg_mux", "R", ("fu", "ALU")), lambda: None)
        _run(kernel)
        dp.request(("latch", "R"), lambda: None)
        _run(kernel)
        assert dp.registers["R"] == -1.0

    def test_copy_route(self, datapath):
        kernel, dp = datapath
        dp.request(("reg_mux", "R", ("reg", "A")), lambda: None)
        _run(kernel)
        dp.request(("latch", "R"), lambda: None)
        _run(kernel)
        assert dp.registers["R"] == 3.0

    def test_latch_without_mux_selection(self, datapath):
        kernel, dp = datapath
        dp.request(("latch", "R"), lambda: None)
        with pytest.raises(SimulationError):
            _run(kernel)

    def test_write_to_input_rejected(self, datapath):
        kernel, dp = datapath
        with pytest.raises(SimulationError):
            dp.request(("latch", "k"), lambda: None)


class TestHazardDetection:
    def test_mux_settling_during_capture_flagged(self, datapath):
        kernel, dp = datapath
        dp.request(("reg_mux", "R", ("reg", "A")), lambda: None)
        _run(kernel)
        # re-steer the mux while the latch is already capturing: the
        # mux settle window (issued at t+0.3) overlaps the capture end
        dp.request(("latch", "R"), lambda: None)
        kernel.schedule(
            0.3, lambda: dp.request(("reg_mux", "R", ("reg", "B")), lambda: None)
        )
        _run(kernel)
        assert dp.hazards  # mux was still settling when R captured

    def test_clean_sequence_no_hazard(self, datapath):
        kernel, dp = datapath
        dp.request(("reg_mux", "R", ("reg", "A")), lambda: None)
        _run(kernel)
        dp.request(("latch", "R"), lambda: None)
        _run(kernel)
        assert dp.hazards == []


class TestMultiAction:
    def test_fork_completes_after_slowest(self, datapath):
        kernel, dp = datapath
        done = []
        action = ("multi", (("reg_mux", "R", ("reg", "A")), ("latch", "R")))
        dp.request(action, lambda: done.append("ok"))
        _run(kernel)
        assert done == ["ok"]
        assert dp.registers["R"] == 3.0

    def test_release(self, datapath):
        kernel, dp = datapath
        done = []
        dp.release(("latch", "R"), lambda: done.append("released"))
        _run(kernel)
        assert done == ["released"]


class TestConditions:
    def test_condition_level(self, datapath):
        __, dp = datapath
        dp.registers["C"] = 0.0
        assert dp.condition_level("C") is False
        dp.registers["C"] = 1.0
        assert dp.condition_level("C") is True
        with pytest.raises(SimulationError):
            dp.condition_level("missing")
