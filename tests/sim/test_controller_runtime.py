"""Controller interpreter edge cases."""

import pytest

from repro.afsm import BurstModeMachine, Cond, Edge, InputBurst, OutputBurst, Signal, SignalKind
from repro.errors import SimulationError
from repro.sim.controller import ControllerRuntime, GlobalWire
from repro.sim.datapath import Datapath
from repro.sim.kernel import EventKernel


def _runtime(machine, registers=None):
    kernel = EventKernel()
    datapath = Datapath(kernel, initial_registers=registers or {}, inputs={})
    wires = {
        signal.name: GlobalWire(signal.name, ["FU"])
        for signal in machine.signals()
        if signal.kind is SignalKind.GLOBAL_READY
    }
    runtime = ControllerRuntime(
        fu="FU", machine=machine, kernel=kernel, datapath=datapath, wires=wires
    )
    return kernel, runtime, wires


class TestFiring:
    def test_fires_on_queued_event(self):
        machine = BurstModeMachine("m")
        machine.declare_signal(Signal("w", SignalKind.GLOBAL_READY, is_input=True))
        s1 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("w", True),)), OutputBurst(()))
        kernel, runtime, wires = _runtime(machine)
        wires["w"].emit(0.0, rising=True)
        runtime.poke()
        kernel.run()
        assert runtime.state == s1
        assert runtime.transitions_taken == 1

    def test_direction_blocks(self):
        machine = BurstModeMachine("m")
        machine.declare_signal(Signal("w", SignalKind.GLOBAL_READY, is_input=True))
        s1 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("w", False),)), OutputBurst(()))
        kernel, runtime, wires = _runtime(machine)
        wires["w"].emit(0.0, rising=True)  # wrong direction
        runtime.poke()
        kernel.run()
        assert runtime.state == "s0"

    def test_conditional_sampling(self):
        machine = BurstModeMachine("m")
        machine.declare_signal(
            Signal("cond_C", SignalKind.CONDITIONAL, is_input=True, action=("cond", "C"))
        )
        taken = machine.fresh_state()
        skipped = machine.fresh_state()
        machine.add_transition("s0", taken, InputBurst((), (Cond("cond_C", True),)), OutputBurst(()))
        machine.add_transition("s0", skipped, InputBurst((), (Cond("cond_C", False),)), OutputBurst(()))
        kernel, runtime, __ = _runtime(machine, registers={"C": 1.0})
        runtime.poke()
        kernel.run()
        assert runtime.state == taken

    def test_nondeterminism_detected(self):
        machine = BurstModeMachine("m")
        machine.declare_signal(Signal("w", SignalKind.GLOBAL_READY, is_input=True))
        a = machine.fresh_state()
        b = machine.fresh_state()
        machine.add_transition("s0", a, InputBurst((Edge("w", True),)), OutputBurst(()))
        machine.add_transition("s0", b, InputBurst((Edge("w", True),)), OutputBurst(()))
        kernel, runtime, wires = _runtime(machine)
        wires["w"].emit(0.0, rising=True)
        runtime.poke()
        with pytest.raises(SimulationError):
            kernel.run()

    def test_local_request_drives_datapath(self):
        machine = BurstModeMachine("m")
        machine.declare_signal(Signal("go", SignalKind.GLOBAL_READY, is_input=True))
        machine.declare_signal(
            Signal(
                "reg_R_sel_X_req",
                SignalKind.LOCAL_REQ,
                is_input=False,
                partner="reg_R_sel_X_ack",
                action=("reg_mux", "R", ("reg", "X")),
            )
        )
        machine.declare_signal(
            Signal(
                "reg_R_sel_X_ack",
                SignalKind.LOCAL_ACK,
                is_input=True,
                partner="reg_R_sel_X_req",
            )
        )
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("go", True),)), OutputBurst((Edge("reg_R_sel_X_req", True),))
        )
        machine.add_transition(
            s1, s2, InputBurst((Edge("reg_R_sel_X_ack", True),)), OutputBurst(())
        )
        kernel, runtime, wires = _runtime(machine, registers={"X": 9.0})
        wires["go"].emit(0.0, rising=True)
        runtime.poke()
        kernel.run()
        assert runtime.state == s2
        assert runtime.datapath.reg_muxes["R"] == ("reg", "X")
