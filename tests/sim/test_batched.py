"""Batched max-plus engine: bit-exactness, refusal, and spot-checks."""

import pytest

np = pytest.importorskip("numpy")

from repro.cdfg import CdfgBuilder
from repro.resilience.faults import FaultPlan, fault_targets
from repro.sim.batched import (
    BatchDivergenceError,
    BatchedTokenEngine,
    UnbatchableDesignError,
    compile_program,
)
from repro.sim.seeding import NOMINAL, node_stream_seed
from repro.sim.token_sim import simulate_tokens
from repro.timing import DelayModel
from repro.transforms import optimize_global
from repro.workloads import build_workload

WORKLOADS = ("diffeq", "gcd", "ewf", "fir")


def _levels(workload):
    base = DelayModel()
    cdfg = build_workload(workload)
    optimized = optimize_global(cdfg, delays=base)
    return base, ((cdfg, None), (optimized.cdfg, optimized.plan))


class TestSeededEquality:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_makespans_bit_identical_to_scalar(self, workload):
        base, levels = _levels(workload)
        seeds = list(range(8))
        for graph, plan in levels:
            engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
            batch = engine.run_seeded(seeds, spot_check=0.0)
            for index, seed in enumerate(seeds):
                scalar = simulate_tokens(
                    graph, delay_model=base, seed=seed, strict=False, channel_plan=plan
                )
                assert scalar.violations == []
                assert float(batch.makespans[index]) == scalar.end_time

    def test_batch_of_one_equals_batch_of_many(self):
        base, levels = _levels("diffeq")
        graph, plan = levels[1]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        many = engine.run_seeded(list(range(6)), spot_check=0.0)
        for seed in range(6):
            one = engine.run_seeded([seed], spot_check=0.0)
            assert float(one.makespans[0]) == float(many.makespans[seed])


class TestModelAndPlanEquality:
    def test_run_plans_matches_scalar_nominal(self):
        base, levels = _levels("diffeq")
        graph, plan = levels[1]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        targets = fault_targets(graph)
        plans = [
            FaultPlan.generate(targets, seed=seed, magnitude_max=1.0)
            for seed in range(12)
        ]
        batch = engine.run_plans(plans, spot_check=0.0)
        for index, fault_plan in enumerate(plans):
            scalar = simulate_tokens(
                graph,
                delay_model=fault_plan.apply(base),
                seed=NOMINAL,
                strict=False,
                channel_plan=plan,
            )
            if batch.suspect[index]:
                continue  # the engine routes these to the oracle itself
            assert scalar.violations == []
            assert float(batch.makespans[index]) == scalar.end_time

    def test_run_models_matches_run_plans(self):
        base, levels = _levels("gcd")
        graph, plan = levels[1]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        targets = fault_targets(graph)
        plans = [FaultPlan.generate(targets, seed=seed) for seed in range(6)]
        via_plans = engine.run_plans(plans, spot_check=0.0)
        via_models = engine.run_models(
            [fault_plan.apply(base) for fault_plan in plans], spot_check=0.0
        )
        assert (via_plans.makespans == via_models.makespans).all()
        assert (via_plans.node_completions == via_models.node_completions).all()


class TestBatchResult:
    def test_node_completion_column_lookup(self):
        base, levels = _levels("diffeq")
        graph, plan = levels[0]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        batch = engine.run_seeded([0, 1, 2], spot_check=0.0)
        assert batch.batch == 3
        end = graph.end.name
        assert (batch.node_completion(end) == batch.makespans).all()

    def test_some_arc_into_end_is_always_last(self):
        base, levels = _levels("diffeq")
        graph, plan = levels[0]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        end = graph.end.name
        arcs = [key for key in engine.program.arc_tokens if key[1] == end]
        assert arcs
        batch = engine.run_seeded(list(range(5)), arcs=arcs, spot_check=0.0)
        covered = np.zeros(batch.batch, dtype=bool)
        for key in arcs:
            indicator = batch.arc_last[key]
            assert indicator.shape == (batch.batch,)
            covered |= indicator
        assert covered.all()


class TestRefusalAndDivergence:
    def _unsafe_cdfg(self):
        builder = CdfgBuilder("unsafe")
        with builder.loop("C", fu="FAST"):
            builder.op("T := T + K", fu="FAST")
            builder.op("C := T < L", fu="FAST")
            builder.op("S := S * K", fu="SLOW")
        cdfg = builder.build(initial={"T": 0, "C": 1, "S": 1, "K": 2, "L": 50})
        # drop the ENDLOOP synchronization of the slow unit: the fast
        # unit laps it, double-pumping LOOP -> S := S * K under NOMINAL
        cdfg.remove_arc("S := S * K", "ENDLOOP")
        return cdfg, DelayModel().with_override("SLOW", "*", (60.0, 70.0))

    def test_nominally_unsafe_design_refused_at_compile(self):
        cdfg, slow = self._unsafe_cdfg()
        with pytest.raises(UnbatchableDesignError):
            compile_program(cdfg, delay_model=slow)

    def test_safe_design_compiles(self):
        cdfg = build_workload("diffeq")
        program = compile_program(cdfg)
        assert program.size > 2
        assert program.firings[0].node.name == cdfg.start.name
        assert program.reference.violations == []

    def test_tampered_makespan_trips_the_spot_check(self):
        base, levels = _levels("diffeq")
        graph, plan = levels[0]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        batch = engine.run_seeded([0, 1], spot_check=0.0)
        batch.makespans[0] += 1.0
        with pytest.raises(BatchDivergenceError):
            engine._spot_check(
                batch,
                lambda i: f"seed {i}",
                lambda i: engine.scalar_result(seed=i),
                1.0,
            )

    def test_untampered_spot_check_passes(self):
        base, levels = _levels("diffeq")
        graph, plan = levels[1]
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        engine.run_seeded(list(range(4)), spot_check=1.0)


class TestStreamSeeding:
    def test_node_stream_seed_is_stable_and_distinct(self):
        first = node_stream_seed(7, "A := B + C")
        assert node_stream_seed(7, "A := B + C") == first
        assert node_stream_seed(8, "A := B + C") != first
        assert node_stream_seed(7, "A := B - C") != first
