"""AST invariants."""

import pytest

from repro.rtl.ast import BinaryExpr, Operand, RtlStatement, expr_reads


class TestOperand:
    def test_requires_exactly_one_of_register_or_literal(self):
        with pytest.raises(ValueError):
            Operand()
        with pytest.raises(ValueError):
            Operand(register="A", literal=1)

    def test_rejects_non_numeric_literal(self):
        with pytest.raises(ValueError):
            Operand(literal="seven")

    def test_str(self):
        assert str(Operand(register="A")) == "A"
        assert str(Operand(literal=3)) == "3"


class TestBinaryExpr:
    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            BinaryExpr("%", Operand(register="A"), Operand(register="B"))

    def test_reads_ignores_literals(self):
        expr = BinaryExpr("+", Operand(register="A"), Operand(literal=1))
        assert expr_reads(expr) == frozenset({"A"})

    def test_reads_same_register_twice(self):
        expr = BinaryExpr("*", Operand(register="A"), Operand(register="A"))
        assert expr_reads(expr) == frozenset({"A"})


class TestRtlStatement:
    def test_copy_flag(self):
        copy = RtlStatement("B", Operand(register="A"))
        assert copy.is_copy and copy.operator is None
        op = RtlStatement("B", BinaryExpr("+", Operand(register="A"), Operand(register="C")))
        assert not op.is_copy and op.operator == "+"

    def test_reads_writes(self):
        op = RtlStatement("B", BinaryExpr("+", Operand(register="A"), Operand(register="C")))
        assert op.reads == frozenset({"A", "C"})
        assert op.writes == "B"

    def test_self_referential_statement(self):
        op = RtlStatement("X", BinaryExpr("+", Operand(register="X"), Operand(register="dx")))
        assert "X" in op.reads
        assert op.writes == "X"
