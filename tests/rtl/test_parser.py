"""Parser tests for the RTL statement micro-language."""

import pytest

from repro.errors import RtlSyntaxError
from repro.rtl import BinaryExpr, Operand, parse_statement


class TestParseBinary:
    def test_addition(self):
        statement = parse_statement("A := Y + M1")
        assert statement.dest == "A"
        assert isinstance(statement.expr, BinaryExpr)
        assert statement.expr.op == "+"
        assert statement.expr.left.register == "Y"
        assert statement.expr.right.register == "M1"

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!="])
    def test_every_operator(self, op):
        statement = parse_statement(f"R := A {op} B")
        assert statement.operator == op

    def test_numeric_literal_operand(self):
        statement = parse_statement("X := X + 1")
        assert statement.expr.right.literal == 1
        assert not statement.expr.right.is_register

    def test_float_literal(self):
        statement = parse_statement("X := X * 0.5")
        assert statement.expr.right.literal == 0.5

    def test_identifier_with_digits(self):
        statement = parse_statement("M1 := U * X1")
        assert statement.dest == "M1"
        assert statement.reads == frozenset({"U", "X1"})

    def test_whitespace_insensitive(self):
        compact = parse_statement("A:=Y+M1")
        spaced = parse_statement("A  :=  Y  +  M1")
        assert compact == spaced


class TestParseCopy:
    def test_register_copy(self):
        statement = parse_statement("X1 := X")
        assert statement.is_copy
        assert statement.reads == frozenset({"X"})
        assert statement.writes == "X1"
        assert statement.operator is None

    def test_literal_copy(self):
        statement = parse_statement("I := 0")
        assert statement.is_copy
        assert statement.reads == frozenset()


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "A",
            "A :=",
            ":= B",
            "A := B +",
            "A := B + C + D",
            "A := + B",
            "1 := B",
            "A = B",
            "A := B $ C",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(RtlSyntaxError):
            parse_statement(bad)

    def test_error_carries_text(self):
        with pytest.raises(RtlSyntaxError) as info:
            parse_statement("A := B %% C")
        assert "A := B %% C" in str(info.value)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        ["A := Y + M1", "X1 := X", "C := X < a", "B := dx2 + dx", "M1 := U * X1"],
    )
    def test_str_reparses(self, text):
        statement = parse_statement(text)
        assert parse_statement(str(statement)) == statement
