"""Evaluation semantics of RTL statements."""

import pytest

from repro.errors import SimulationError
from repro.rtl import execute_statement, evaluate_expr, parse_statement
from repro.rtl.semantics import _apply


class TestEvaluate:
    def test_arithmetic(self):
        registers = {"Y": 2.0, "M1": 3.0}
        statement = parse_statement("A := Y + M1")
        assert evaluate_expr(statement.expr, registers) == 5.0

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 2, 3, 6),
            ("/", 6, 3, 2),
            ("<", 2, 3, 1),
            ("<", 3, 2, 0),
            ("<=", 3, 3, 1),
            (">", 3, 2, 1),
            (">=", 2, 3, 0),
            ("==", 2, 2, 1),
            ("!=", 2, 2, 0),
        ],
    )
    def test_operators(self, op, left, right, expected):
        assert _apply(op, left, right) == expected

    def test_comparison_returns_int(self):
        assert _apply("<", 1.5, 2.5) == 1
        assert isinstance(_apply("<", 1.5, 2.5), int)

    def test_uninitialized_register_raises(self):
        with pytest.raises(SimulationError):
            evaluate_expr(parse_statement("A := B + C").expr, {"B": 1.0})

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            evaluate_expr(parse_statement("A := B / C").expr, {"B": 1.0, "C": 0.0})


class TestExecute:
    def test_writes_destination(self):
        registers = {"X": 1.0, "dx": 0.5}
        value = execute_statement(parse_statement("X := X + dx"), registers)
        assert value == 1.5
        assert registers["X"] == 1.5

    def test_copy(self):
        registers = {"X": 7.0}
        execute_statement(parse_statement("X1 := X"), registers)
        assert registers["X1"] == 7.0
