"""The frontend reproduces the hand-built DIFFEQ design.

The example kernel at ``examples/kernels/diffeq.py`` factors the
update exactly like :mod:`repro.workloads.diffeq`; compiled under the
paper's resource bounds (two multipliers, two ALUs) it must match the
hand-built CDFG's nominal makespan and its golden register file —
the acceptance gate for the whole frontend.
"""

from pathlib import Path

import pytest

from repro.cdfg.validate import check_well_formed
from repro.frontend import load_kernel_file
from repro.sim import simulate_tokens
from repro.sim.seeding import NOMINAL
from repro.workloads import build_workload, golden_reference

KERNEL_PATH = Path(__file__).resolve().parents[2] / "examples" / "kernels" / "diffeq.py"


@pytest.fixture(scope="module")
def compiled():
    return load_kernel_file(str(KERNEL_PATH), bounds={"MUL": 2, "ALU": 2})


class TestDiffeqEquivalence:
    def test_compiles_well_formed(self, compiled):
        check_well_formed(compiled.build())

    def test_uses_the_paper_resource_mix(self, compiled):
        assert compiled.schedule.functional_units() == (
            "ALU1",
            "ALU2",
            "MUL1",
            "MUL2",
        )

    def test_nominal_makespan_matches_the_hand_built_design(self, compiled):
        mine = simulate_tokens(compiled.build(), seed=NOMINAL).end_time
        hand = simulate_tokens(build_workload("diffeq"), seed=NOMINAL).end_time
        assert mine == hand

    def test_result_matches_the_hand_built_golden_model(self, compiled):
        # same factorization -> bit-identical floats, modulo the
        # register renaming (hand-built uses uppercase names)
        golden = compiled.golden()
        hand = golden_reference("diffeq")
        assert golden["y"] == hand["Y"]
        assert golden["x"] == hand["X"]
        assert golden["u"] == hand["U"]

    def test_simulation_matches_its_own_golden_model(self, compiled):
        result = simulate_tokens(compiled.build(), seed=NOMINAL)
        for name, value in compiled.golden().items():
            assert result.registers[name] == value, name

    def test_parameter_sweep_stays_equivalent(self, compiled):
        for dx in (0.25, 0.5):
            golden = compiled.golden(dx=dx, dx2=2 * dx)
            hand = golden_reference("diffeq", dx=dx)
            assert golden["y"] == hand["Y"]
