"""Compiled kernels through the CDFG pipeline: build, simulate, prove."""

import pytest

from repro import synthesize
from repro.cache.fingerprint import fingerprint_cdfg
from repro.cdfg.validate import check_well_formed
from repro.errors import FrontendError
from repro.frontend import (
    compile_kernel,
    parse_bounds,
    register_kernel,
    unregister_kernel,
)
from repro.sim import simulate_tokens
from repro.sim.seeding import NOMINAL
from repro.workloads import build_workload, golden_reference

BRANCHY = """
def clip(x: float = 5.0, lo: float = 1.0, hi: float = 3.0) -> float:
    y = x
    if y < lo:
        y = lo
    else:
        if hi < y:
            y = hi
        else:
            pass
    return y
"""

NESTED = """
def nest(n: float = 3.0) -> float:
    acc = 0.0
    i = 0.0
    while i < n:
        j = 0.0
        while j < i:
            acc = acc + 1.0
            j = j + 1.0
        i = i + 1.0
    return acc
"""


def _roundtrip(source, bounds=None, **params):
    kernel = compile_kernel(source, bounds=bounds)
    cdfg = kernel.build(**params)
    check_well_formed(cdfg)
    golden = kernel.golden(**params)
    for seed in (NOMINAL, 0, 1):
        result = simulate_tokens(cdfg, seed=seed)
        for name, value in golden.items():
            assert result.registers[name] == value, (seed, name)
    return kernel, golden


class TestRoundtrip:
    def test_straight_line(self):
        __, golden = _roundtrip(
            "def f(a: float = 3.0, b: float = 4.0):\n    c = a * b + a\n"
        )
        assert golden["c"] == 15.0

    def test_if_else(self):
        __, golden = _roundtrip(BRANCHY)
        assert golden["y"] == 3.0

    def test_if_else_other_branch(self):
        __, golden = _roundtrip(BRANCHY, x=0.5)
        assert golden["y"] == 1.0

    def test_nested_loops(self):
        __, golden = _roundtrip(NESTED, bounds={"ALU": 2})
        assert golden["acc"] == 3.0

    def test_param_override_changes_the_initial_file(self):
        kernel = compile_kernel(NESTED)
        assert kernel.golden(n=5.0)["acc"] == 10.0
        assert kernel.build(n=5.0).inputs["n"] == 5.0

    def test_unknown_param_override_rejected(self):
        kernel = compile_kernel(NESTED)
        with pytest.raises(FrontendError):
            kernel.build(zzz=1.0)


class TestRegistry:
    def test_registered_kernel_resolves_like_a_builtin(self):
        kernel = compile_kernel(BRANCHY)
        name = register_kernel(kernel)
        try:
            assert name == "clip"
            cdfg = build_workload("clip")
            assert fingerprint_cdfg(cdfg) == kernel.fingerprint()
            assert golden_reference("clip", x=0.5)["y"] == 1.0
        finally:
            unregister_kernel(name)

    def test_name_collision_rejected_without_replace(self):
        kernel = compile_kernel(BRANCHY)
        with pytest.raises(FrontendError):
            register_kernel(kernel, name="diffeq")

    def test_synthesize_accepts_a_compiled_kernel(self):
        kernel = compile_kernel(
            "def mul(a: float = 2.0, b: float = 3.0):\n    c = a * b\n"
        )
        design = synthesize(kernel)
        assert design.controllers

    def test_prove_workload_on_a_registered_kernel(self):
        from repro.verify.flow import prove_workload

        kernel = compile_kernel(
            "def mac(a: float = 2.0, b: float = 3.0, c: float = 1.0):\n"
            "    p = a * b\n"
            "    s = p + c\n"
        )
        name = register_kernel(kernel)
        try:
            report = prove_workload(name)
            assert report.proved, report.summary()
        finally:
            unregister_kernel(name)


class TestFingerprint:
    def test_same_source_same_fingerprint(self):
        first = compile_kernel(BRANCHY)
        second = compile_kernel(BRANCHY)
        assert first.fingerprint() == second.fingerprint()

    def test_bounds_change_the_fingerprint(self):
        narrow = compile_kernel(NESTED, bounds={"ALU": 1})
        wide = compile_kernel(NESTED, bounds={"ALU": 2})
        assert narrow.fingerprint() != wide.fingerprint()


class TestParseBounds:
    def test_spec_parsed(self):
        assert parse_bounds("MUL=2,ALU=1") == {"MUL": 2, "ALU": 1}

    def test_empty_spec_gives_defaults(self):
        assert parse_bounds(None) == {"ALU": 1, "MUL": 1}

    @pytest.mark.parametrize("spec", ["MUL", "MUL=x", "=2", "FPU=1"])
    def test_malformed_spec_rejected(self, spec):
        with pytest.raises(FrontendError):
            parse_bounds(spec)
