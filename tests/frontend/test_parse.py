"""Parsing and lowering of the Python subset."""

import pytest

from repro.errors import FrontendError, KernelBoundError
from repro.frontend.ir import IfBlock, KernelOp, WhileBlock, interpret
from repro.frontend.parse import parse_kernel

SIMPLE = """
def madd(a: float = 3.0, b: float = 4.0, c: float = 5.0) -> float:
    p = a * b
    s = p + c
    return s
"""


class TestAcceptance:
    def test_params_in_declaration_order(self):
        ir = parse_kernel(SIMPLE)
        assert ir.name == "madd"
        assert ir.params == {"a": 3.0, "b": 4.0, "c": 5.0}

    def test_inputs_are_unwritten_params(self):
        ir = parse_kernel(SIMPLE)
        assert ir.inputs == ("a", "b", "c")
        assert ir.written == ("p", "s")

    def test_outputs_from_trailing_return(self):
        ir = parse_kernel(SIMPLE)
        assert ir.outputs == ("s",)

    def test_ops_indexed_in_program_order(self):
        ir = parse_kernel(SIMPLE)
        assert [op.index for op in ir.ops()] == [0, 1]

    def test_written_param_is_a_register_not_an_input(self):
        ir = parse_kernel(
            """
def bump(x: float = 1.0, dx: float = 0.5) -> float:
    x = x + dx
    return x
"""
        )
        assert ir.inputs == ("dx",)
        assert "x" in ir.written

    def test_nested_expression_spills_to_temporaries(self):
        ir = parse_kernel(
            """
def fma(a: float = 2.0, b: float = 3.0, c: float = 4.0) -> float:
    r = a * b + c
    return r
"""
        )
        statements = [str(op) for op in ir.ops()]
        assert statements == ["_t0 := a * b", "r := _t0 + c"]

    def test_augmented_assignment_desugars(self):
        ir = parse_kernel(
            """
def bump(x: float = 0.0, dx: float = 1.0):
    x += dx
"""
        )
        assert [str(op) for op in ir.ops()] == ["x := x + dx"]

    def test_if_condition_materialized_before_block(self):
        ir = parse_kernel(
            """
def pick(a: float = 1.0, b: float = 2.0):
    r = 0.0
    if a < b:
        r = a
    else:
        r = b
"""
        )
        cond_op, block = ir.items[1], ir.items[2]
        assert isinstance(cond_op, KernelOp)
        assert str(cond_op) == "_c0 := a < b"
        assert isinstance(block, IfBlock)
        assert block.condition == "_c0"
        assert len(block.then_items) == 1 and len(block.else_items) == 1

    def test_while_latch_appended_to_body(self):
        ir = parse_kernel(
            """
def count(n: float = 3.0):
    i = 0.0
    while i < n:
        i = i + 1.0
"""
        )
        loop = ir.items[-1]
        assert isinstance(loop, WhileBlock)
        assert loop.folded_entry
        assert str(loop.body[-1]) == "_c0 := i < n"

    def test_nested_loop_gets_preheader_op(self):
        ir = parse_kernel(
            """
def nest(n: float = 2.0):
    i = 0.0
    acc = 0.0
    while i < n:
        j = 0.0
        while j < n:
            acc = acc + 1.0
            j = j + 1.0
        i = i + 1.0
"""
        )
        outer = next(item for item in ir.items if isinstance(item, WhileBlock))
        inner_index = next(
            index
            for index, item in enumerate(outer.body)
            if isinstance(item, WhileBlock)
        )
        inner = outer.body[inner_index]
        assert not inner.folded_entry
        preheader = outer.body[inner_index - 1]
        assert isinstance(preheader, KernelOp)
        assert preheader.statement.dest == inner.condition

    def test_bare_name_condition_needs_no_cond_register(self):
        ir = parse_kernel(
            """
def drain(go: float = 1.0):
    while go:
        go = go - 1.0
"""
        )
        loop = ir.items[-1]
        assert loop.condition == "go"
        assert loop.entry_statement is None

    def test_kernel_selection_by_name(self):
        source = SIMPLE + "\n\ndef other(x: float = 1.0):\n    y = x + 1.0\n"
        assert parse_kernel(source, kernel="other").name == "other"

    def test_interpreter_matches_python(self):
        ir = parse_kernel(SIMPLE)
        env = interpret(ir, {"a": 3.0, "b": 4.0, "c": 5.0}).registers
        assert env["s"] == 17.0

    def test_comparisons_yield_int_semantics(self):
        ir = parse_kernel(
            """
def cmp(a: float = 1.0, b: float = 2.0):
    c = a < b
"""
        )
        assert interpret(ir, ir.params).registers["c"] == 1

    def test_runaway_loop_hits_the_bound(self):
        ir = parse_kernel(
            """
def spin(go: float = 1.0):
    x = 0.0
    while go:
        x = x + 1.0
"""
        )
        with pytest.raises(KernelBoundError):
            interpret(ir, ir.params, max_steps=64)


class TestRejection:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("def f(x) -> float:\n    y = x\n", "type annotation"),
            ("def f(x: float):\n    y = x\n", "default value"),
            ("def f(x: str = 'a'):\n    y = x\n", "type annotation"),
            ("def f(*args: float):\n    pass\n", "positional parameters"),
            ("def f(x: float = 1.0):\n    y = x % 2\n", "unsupported operator"),
            ("def f(x: float = 1.0):\n    y = -x\n", "unary"),
            ("def f(x: float = 1.0):\n    y = x < 1 < 2\n", "chained"),
            ("def f(x: float = 1.0):\n    y = x and x\n", "and/or"),
            ("def f(x: float = 1.0):\n    y = g(x)\n", "unsupported expression"),
            ("def f(x: float = 1.0):\n    y = z\n", "read before assignment"),
            ("def f(x: float = 1.0):\n    y = -1.0\n", "unary"),
            ("def f(x: float = 1.0):\n    for i in x:\n        pass\n", "unsupported statement"),
            ("def f(x: float = 1.0):\n    while x:\n        pass\n    else:\n        pass\n", "while/else"),
            ("def f(x: float = 1.0):\n    return x\n    y = x\n", "final statement"),
            ("def f(x: float = 1.0):\n    if x + 1 < 2:\n        pass\n", "names or literals"),
            ("def f(x: float = 1.0):\n    y, z = x, x\n", "single plain name"),
            ("x = 1\n", "exactly one kernel function"),
        ],
    )
    def test_outside_subset_rejected(self, source, fragment):
        with pytest.raises(FrontendError) as info:
            parse_kernel(source)
        assert fragment in str(info.value)

    def test_error_carries_line_number(self):
        with pytest.raises(FrontendError) as info:
            parse_kernel("def f(x: float = 1.0):\n    y = x\n    z = -y\n")
        assert info.value.lineno == 3
        assert "(line 3)" in str(info.value)

    def test_unknown_kernel_name(self):
        with pytest.raises(FrontendError) as info:
            parse_kernel(SIMPLE, kernel="missing")
        assert "madd" in str(info.value)

    def test_syntax_error_wrapped(self):
        with pytest.raises(FrontendError):
            parse_kernel("def f(:\n")
