"""Resource-bounded list scheduling."""

import pytest

from repro.errors import FrontendError
from repro.frontend.parse import parse_kernel
from repro.frontend.schedule import ListScheduler, normalize_bounds

WIDE = """
def wide(a: float = 1.0, b: float = 2.0):
    p = a * b
    q = a * a
    r = b * b
    s = a + b
    t = a - b
"""


def _schedule(source, bounds=None):
    ir = parse_kernel(source)
    return ir, ListScheduler(bounds).schedule(ir)


def _per_step_usage(run):
    usage = {}
    for op, step, fu in run:
        key = (step, op.fu_class)
        usage.setdefault(key, set()).add(fu)
    return usage


class TestResourceBounds:
    @pytest.mark.parametrize("bounds", [{"MUL": 1, "ALU": 1}, {"MUL": 2, "ALU": 2}, {"MUL": 3, "ALU": 1}])
    def test_per_cycle_capacity_never_exceeded(self, bounds):
        __, schedule = _schedule(WIDE, bounds)
        for run in schedule.runs:
            for (step, cls), fus in _per_step_usage(run).items():
                assert len(fus) <= bounds.get(cls, 1), (step, cls, fus)

    def test_no_fu_double_booked_in_one_step(self):
        __, schedule = _schedule(WIDE, {"MUL": 2, "ALU": 2})
        for run in schedule.runs:
            seen = set()
            for op, step, fu in run:
                assert (step, fu) not in seen
                seen.add((step, fu))

    def test_instances_named_from_class_and_index(self):
        __, schedule = _schedule(WIDE, {"MUL": 2, "ALU": 2})
        assert schedule.instances["MUL"] == ("MUL1", "MUL2")
        assert schedule.functional_units() == ("ALU1", "ALU2", "MUL1", "MUL2")

    def test_single_unit_serializes_everything(self):
        __, schedule = _schedule(WIDE, {"MUL": 1, "ALU": 1})
        (run,) = schedule.runs
        mul_steps = [step for op, step, __ in run if op.fu_class == "MUL"]
        assert mul_steps == sorted(mul_steps)
        assert len(set(mul_steps)) == len(mul_steps)

    def test_unlisted_used_class_gets_one_instance(self):
        ir, schedule = _schedule(
            "def d(a: float = 8.0, b: float = 2.0):\n    q = a / b\n",
            {"ALU": 1},
        )
        assert schedule.instances["DIV"] == ("DIV1",)


class TestDependences:
    def test_raw_crosses_a_step_boundary(self):
        __, schedule = _schedule(
            """
def chain(a: float = 1.0):
    b = a + a
    c = b + a
    d = c + b
""",
            {"ALU": 4},
        )
        (run,) = schedule.runs
        steps = {str(op): step for op, step, __ in run}
        assert steps["b := a + a"] < steps["c := b + a"] < steps["d := c + b"]

    def test_war_may_share_a_step_but_keeps_program_order(self):
        __, schedule = _schedule(
            """
def overwrite(a: float = 1.0, b: float = 2.0):
    c = a + b
    a = b + b
""",
            {"ALU": 2},
        )
        (run,) = schedule.runs
        labels = [str(op) for op, __, __ in run]
        assert labels.index("c := a + b") < labels.index("a := b + b")

    def test_waw_serialized(self):
        __, schedule = _schedule(
            """
def redo(a: float = 1.0):
    b = a + a
    b = a * a
""",
            {"ALU": 2, "MUL": 2},
        )
        (run,) = schedule.runs
        steps = {str(op): step for op, step, __ in run}
        assert steps["b := a + a"] < steps["b := a * a"]

    def test_deterministic_across_invocations(self):
        first = _schedule(WIDE, {"MUL": 2, "ALU": 2})[1]
        second = _schedule(WIDE, {"MUL": 2, "ALU": 2})[1]
        render = lambda s: [[(str(op), step, fu) for op, step, fu in run] for run in s.runs]
        assert render(first) == render(second)


class TestBoundsValidation:
    def test_unknown_class_rejected(self):
        with pytest.raises(FrontendError):
            normalize_bounds({"FPU": 1})

    def test_nonpositive_count_rejected(self):
        with pytest.raises(FrontendError):
            normalize_bounds({"ALU": 0})

    def test_defaults_merged_in(self):
        assert normalize_bounds({"MUL": 2}) == {"ALU": 1, "MUL": 2}


class TestIfArmPinning:
    """All ops of an if-block's arms serialize onto one instance.

    The burst-mode extraction requires the decision node and every
    conditional op on a single controller (the GCD pattern); the
    scheduler enforces it by pinning both arms — whatever their op
    classes — to instance 1 of the first arm op's class.
    """

    BRANCHY = """
def branchy(a: float = 1.0, b: float = 2.0):
    u = a + b
    if u < 2.0:
        w = a + 1.0
        x = b + 2.0
        y = a * 3.0
    else:
        w = a - 1.0
    z = a + 4.0
"""

    def _arm_ops(self, ir):
        from repro.frontend.ir import IfBlock, walk_ops

        block = next(item for item in ir.items if isinstance(item, IfBlock))
        return walk_ops(list(block.then_items) + list(block.else_items))

    def test_arm_ops_share_one_instance(self):
        ir, __ = _schedule(self.BRANCHY, {"ALU": 2, "MUL": 2})
        hosts = {op.fu for op in self._arm_ops(ir)}
        assert hosts == {"ALU1"}, hosts

    def test_arm_ops_serialize_one_per_step(self):
        from repro.frontend.ir import IfBlock, walk_ops

        ir, __ = _schedule(self.BRANCHY, {"ALU": 2, "MUL": 2})
        block = next(item for item in ir.items if isinstance(item, IfBlock))
        for arm in (block.then_items, block.else_items):
            steps = [op.step for op in walk_ops(list(arm))]
            assert len(steps) == len(set(steps)), steps

    def test_ops_outside_arms_still_spread(self):
        ir, schedule = _schedule(self.BRANCHY, {"ALU": 2, "MUL": 2})
        arm_indices = {op.index for op in self._arm_ops(ir)}
        outside = [
            op
            for run in schedule.runs
            for op, __, ___ in run
            if op.index not in arm_indices
        ]
        assert outside and all(op.fu for op in outside)
