"""Job model contracts: canonicalization, keys, execution, taxonomy."""

import pytest

from repro.errors import JobError
from repro.serve.jobs import (
    FAILED,
    TIMED_OUT,
    canonical_json,
    canonical_params,
    classify_failure,
    execute_job,
    job_key,
)


class TestCanonicalParams:
    def test_defaults_filled_and_sorted(self):
        canon = canonical_params("verify", {"workload": "gcd"})
        assert canon == {"runs": 5, "seed": 0, "workload": "gcd"}

    def test_equivalent_submissions_become_identical(self):
        loose = canonical_params("verify", {"workload": " GCD ", "runs": "5"})
        strict = canonical_params("verify", {"workload": "gcd", "runs": 5, "seed": 0})
        assert canonical_json(loose) == canonical_json(strict)

    @pytest.mark.parametrize(
        "kind, params, fragment",
        [
            ("mine", {"workload": "gcd"}, "unknown job kind"),
            ("verify", None, "missing required parameter"),
            ("verify", {"workload": "gcd", "bogus": 1}, "unknown parameter"),
            ("verify", {"workload": "nope"}, "unknown workload"),
            ("synthesize", {"workload": "gcd", "level": "max"}, "unknown level"),
            ("verify", {"workload": "gcd", "runs": "many"}, "bad value"),
        ],
    )
    def test_invalid_submissions_are_joberror(self, kind, params, fragment):
        with pytest.raises(JobError, match=fragment):
            canonical_params(kind, params)

    def test_chaos_side_channel_passes_through(self):
        canon = canonical_params(
            "verify", {"workload": "gcd", "_chaos": {"sleep": 0.1}}
        )
        assert canon["_chaos"] == {"sleep": 0.1}
        with pytest.raises(JobError, match="_chaos"):
            canonical_params("verify", {"workload": "gcd", "_chaos": "yes"})


class TestJobKey:
    def test_same_meaning_same_key(self):
        one = job_key("verify", canonical_params("verify", {"workload": "gcd"}))
        two = job_key(
            "verify", canonical_params("verify", {"workload": "GCD", "runs": 5})
        )
        assert one == two

    def test_different_params_different_key(self):
        base = canonical_params("verify", {"workload": "gcd"})
        other = canonical_params("verify", {"workload": "gcd", "seed": 1})
        assert job_key("verify", base) != job_key("verify", other)

    def test_kind_is_part_of_identity(self):
        verify = canonical_params("verify", {"workload": "gcd"})
        explore = canonical_params("explore", {"workload": "gcd"})
        assert job_key("verify", verify) != job_key("explore", explore)

    def test_chaos_is_excluded_from_identity(self):
        plain = canonical_params("verify", {"workload": "gcd"})
        chaotic = canonical_params(
            "verify", {"workload": "gcd", "_chaos": {"sleep": 1}}
        )
        assert job_key("verify", plain) == job_key("verify", chaotic)


class TestExecution:
    def test_synthesize_is_deterministic(self):
        params = canonical_params(
            "synthesize", {"workload": "gcd", "level": "gt+lt"}
        )
        first = execute_job("synthesize", params)
        second = execute_job("synthesize", params)
        assert canonical_json(first) == canonical_json(second)
        assert first["channels"] > 0 and first["makespan"] > 0

    def test_verify_result_has_no_wall_clock(self):
        params = canonical_params("verify", {"workload": "gcd", "runs": 1})
        first = execute_job("verify", params)
        second = execute_job("verify", params)
        assert canonical_json(first) == canonical_json(second)
        assert first["report"]["duration"] == 0.0


class TestClassifyFailure:
    def test_worker_death_is_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        from repro.serve.jobs import WorkerKilled

        for exc in (BrokenProcessPool("dead"), WorkerKilled("chaos")):
            state, exit_class, retryable = classify_failure(exc)
            assert (state, exit_class, retryable) == (FAILED, "issues", True)

    def test_timeout_is_terminal_not_retried(self):
        from repro.resilience.injection import PointTimeout

        state, exit_class, retryable = classify_failure(PointTimeout("slow"))
        assert (state, exit_class, retryable) == (TIMED_OUT, "issues", False)

    def test_bad_submission_is_fatal(self):
        state, exit_class, retryable = classify_failure(JobError("nope"))
        assert (state, exit_class, retryable) == (FAILED, "fatal", False)
