"""The chaos acceptance drill, run for real.

One test, deliberately heavyweight (~15s): a fault-free baseline, then
the same jobs under dropped connections, delayed responses, a worker
death, a mid-job crash with restart, and a scribbled result row.  The
drill's own checks are the assertions — no job lost, none double-
executed, every resumed result byte-identical.
"""

from repro.serve.chaos import ServeFaultPlan, chaos_drill, format_drill_report


class TestFaultPlan:
    def test_decisions_are_deterministic_per_index(self):
        plan = ServeFaultPlan(seed=7, drop_prob=0.3, delay_prob=0.3)
        replay = ServeFaultPlan(seed=7, drop_prob=0.3, delay_prob=0.3)
        decisions = [plan.request_action(index) for index in range(200)]
        assert decisions == [replay.request_action(index) for index in range(200)]
        kinds = {decision[0] for decision in decisions if decision}
        assert kinds == {"drop", "delay"}

    def test_seed_changes_the_plan(self):
        one = ServeFaultPlan(seed=1, drop_prob=0.5)
        two = ServeFaultPlan(seed=2, drop_prob=0.5)
        assert [one.request_action(i) for i in range(64)] != [
            two.request_action(i) for i in range(64)
        ]

    def test_zero_probabilities_never_fire(self):
        plan = ServeFaultPlan(seed=0)
        assert all(plan.request_action(i) is None for i in range(64))


class TestDrill:
    def test_acceptance_drill_passes(self, tmp_path):
        report = chaos_drill(tmp_path, seed=3, executor="thread")
        assert report["ok"], "\n" + format_drill_report(report)
        names = {entry["name"] for entry in report["checks"]}
        # the three headline guarantees must be among the checks
        assert any("no job lost" in name for name in names)
        assert any("no double execution" in name for name in names)
        assert any("byte-identical" in name for name in names)
