"""End-to-end server contracts over real HTTP.

Each test boots a full :class:`~repro.serve.server.JobServer` on an
ephemeral port via the threaded harness and talks to it with the
blocking client — the same stack ``repro serve`` deploys, minus the
process boundary (covered by ``benchmarks/serve_smoke.py``).
"""

import pytest

from repro.resilience.pool import RetryPolicy
from repro.serve.harness import ServerHarness
from repro.serve.jobs import canonical_json
from repro.serve.server import ServerConfig

VERIFY = {"workload": "gcd", "runs": 1}


def _config(**overrides):
    base = dict(
        workers=2,
        executor="thread",
        policy=RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.1),
    )
    base.update(overrides)
    return ServerConfig(**base)


class TestHappyPath:
    def test_submit_wait_result(self, tmp_path):
        with ServerHarness(tmp_path / "s.sqlite3", _config()) as harness:
            client = harness.client()
            assert client.healthz()["status"] == "ok"
            job = client.run("verify", VERIFY, timeout=120.0)
            assert job["state"] == "DONE"
            assert job["result"]["report"]["workload"] == "gcd"
            listing = client.jobs()
            assert [entry["job_id"] for entry in listing] == [job["job_id"]]

    def test_duplicate_submission_served_from_cache(self, tmp_path):
        with ServerHarness(tmp_path / "s.sqlite3", _config()) as harness:
            client = harness.client()
            first = client.run("verify", VERIFY, timeout=120.0)
            second = client.submit("verify", dict(VERIFY))
            assert second["state"] == "DONE" and second["dedup"]
            assert canonical_json(second["result"]) == canonical_json(
                first["result"]
            )
            assert client.stats()["store"]["executions"] == 1

    def test_bad_submission_is_400_with_taxonomy(self, tmp_path):
        with ServerHarness(tmp_path / "s.sqlite3", _config()) as harness:
            status, payload = harness.client().request(
                "POST", "/jobs", {"kind": "verify", "params": {"workload": "zz"}}
            )
            assert status == 400
            assert payload["exit_class"] == "fatal"

    def test_unknown_routes_and_methods(self, tmp_path):
        with ServerHarness(tmp_path / "s.sqlite3", _config()) as harness:
            client = harness.client()
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("DELETE", "/jobs")[0] == 405
            assert client.request("GET", "/jobs/j999999")[0] == 404


class TestAdmissionControl:
    def test_queue_full_sheds_fresh_work_but_admits_duplicates(self, tmp_path):
        config = _config(queue_depth=1, workers=1)
        with ServerHarness(tmp_path / "s.sqlite3", config) as harness:
            client = harness.client()
            # a slow job occupies the whole queue budget
            slow = client.submit(
                "verify", dict(VERIFY, _chaos={"sleep": 2.0}), wait_shed=False
            )
            status, payload = client.request(
                "POST",
                "/jobs",
                {"kind": "verify", "params": {"workload": "gcd", "runs": 3}},
            )
            assert status == 429
            # ... but a duplicate of the queued job costs nothing: admitted
            duplicate = client.submit(
                "verify", dict(VERIFY, _chaos={"sleep": 2.0}), wait_shed=False
            )
            assert duplicate["job_id"] == slow["job_id"]
            assert client.stats()["server"]["shed"] == 1
            client.wait(slow["job_id"], timeout=120.0)

    def test_per_client_cap(self, tmp_path):
        config = _config(client_cap=1, workers=1, queue_depth=16)
        with ServerHarness(tmp_path / "s.sqlite3", config) as harness:
            client = harness.client()
            client.submit(
                "verify", dict(VERIFY, _chaos={"sleep": 1.0}),
                client="greedy", wait_shed=False,
            )
            status, payload = client.request(
                "POST",
                "/jobs",
                {
                    "kind": "verify",
                    "params": {"workload": "gcd", "runs": 2},
                    "client": "greedy",
                },
            )
            assert status == 429 and "cap" in payload["error"]
            # a different client is not punished for greedy's backlog
            other = client.submit(
                "verify", {"workload": "gcd", "runs": 2}, client="modest"
            )
            assert other["state"] in ("SUBMITTED", "RUNNING", "DONE")


class TestRetries:
    def test_transient_worker_death_is_retried_to_success(self, tmp_path):
        marker = tmp_path / "die.marker"
        with ServerHarness(tmp_path / "s.sqlite3", _config()) as harness:
            client = harness.client()
            job = client.submit(
                "verify", dict(VERIFY, _chaos={"raise_once": str(marker)})
            )
            final = client.wait(job["job_id"], timeout=120.0)
            assert final["state"] == "DONE"
            assert final["attempts"] == 2
            assert client.stats()["store"]["retries"] == 1

    def test_retry_budget_exhausts_to_failed(self, tmp_path):
        config = _config(policy=RetryPolicy(max_retries=0, base_delay=0.01))
        marker = tmp_path / "die.marker"
        with ServerHarness(tmp_path / "s.sqlite3", config) as harness:
            client = harness.client()
            # raise_once + a fresh marker each attempt = dies every time
            job = client.submit(
                "verify", dict(VERIFY, _chaos={"raise_once": str(marker)})
            )
            marker.unlink(missing_ok=True)
            final = client.wait(job["job_id"], timeout=120.0)
            # with zero retries the first death is terminal
            assert final["state"] == "FAILED"
            assert final["exit_class"] == "issues"


class TestTimeouts:
    def test_job_deadline_times_out_with_taxonomy(self, tmp_path):
        config = _config(job_timeout=0.3, workers=1)
        with ServerHarness(tmp_path / "s.sqlite3", config) as harness:
            client = harness.client()
            job = client.submit("verify", dict(VERIFY, _chaos={"sleep": 5.0}))
            final = client.wait(job["job_id"], timeout=120.0)
            assert final["state"] == "TIMED_OUT"
            assert final["exit_class"] == "issues"


class TestCrashRecovery:
    def test_kill_mid_job_resumes_byte_identically(self, tmp_path):
        store_path = tmp_path / "s.sqlite3"
        # baseline result from an undisturbed server
        with ServerHarness(tmp_path / "baseline.sqlite3", _config()) as harness:
            baseline = harness.client().run("verify", VERIFY, timeout=120.0)

        harness = ServerHarness(store_path, _config()).start()
        client = harness.client()
        job = client.submit("verify", dict(VERIFY, _chaos={"sleep": 1.5}))
        job_id = job["job_id"]
        import time

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            current = client.job(job_id)
            if current and current["state"] == "RUNNING":
                break
            time.sleep(0.02)
        harness.crash()  # SIGKILL semantics: no drain, no close

        resumed = ServerHarness(store_path, _config()).start()
        try:
            assert resumed.server.recovered_jobs == 1
            final = resumed.client().wait(job_id, timeout=120.0)
            assert final["state"] == "DONE"
            assert canonical_json(final["result"]) == canonical_json(
                baseline["result"]
            )
        finally:
            resumed.stop()


class TestDrain:
    def test_drain_rejects_new_work_and_reports_draining(self, tmp_path):
        harness = ServerHarness(tmp_path / "s.sqlite3", _config()).start()
        try:
            client = harness.client()
            client.run("verify", VERIFY, timeout=120.0)
            assert client.drain()["status"] == "draining"
        finally:
            harness.stop()
        # post-drain the durable queue is intact and empty of surprises
        from repro.serve.store import JobStore

        store = JobStore(tmp_path / "s.sqlite3")
        assert store.counts()["RUNNING"] == 0
        store.close()


class TestWorkerPoolIsolation:
    def test_process_pool_workers_never_inherit_server_fds(self):
        """Plain fork-context workers snapshot every FD open at spawn
        time.  A worker forked while a request was in flight kept a
        copy of the accepted socket, so the server's close() never
        sent FIN and that client hung until its socket timeout (the
        spawn races real traffic: first dispatch and every rebuild).
        The runner must therefore build its pool from the forkserver
        context, whose master is started before any connection exists.
        """
        from repro.serve.runner import JobRunner

        runner = JobRunner(workers=1, executor="process")
        try:
            context = runner._pool._mp_context
            assert context.get_start_method() == "forkserver"
        finally:
            runner.shutdown(wait=False)
