"""JobStore contracts: durable lifecycle, dedup, exactly-once, healing.

The store is the crash-safety foundation: every invariant the server
and the chaos drill rely on is pinned here directly, without HTTP in
the way.
"""

import multiprocessing

import pytest

from repro.serve.jobs import DONE, FAILED, RUNNING, SUBMITTED, TIMED_OUT
from repro.serve.store import JobStore

KEY = "job:abc"
PARAMS = {"workload": "gcd", "runs": 2, "seed": 0}


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite3")
    yield store
    store.close()


class TestLifecycle:
    def test_submit_claim_finish(self, store):
        job, dedup = store.submit("verify", PARAMS, KEY)
        assert (job.state, dedup) == (SUBMITTED, False)
        assert store.claim(job.job_id)
        assert store.get(job.job_id).state == RUNNING
        assert store.finish(job.job_id, {"answer": 42})
        final = store.get(job.job_id)
        assert final.state == DONE
        assert final.result == {"answer": 42}
        assert final.exit_class == "ok"

    def test_claim_is_exclusive(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        assert store.claim(job.job_id)
        assert not store.claim(job.job_id)

    def test_fail_requires_terminal_state(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        store.claim(job.job_id)
        with pytest.raises(ValueError):
            store.fail(job.job_id, "x", "issues", state=RUNNING)
        assert store.fail(job.job_id, "deadline", "issues", state=TIMED_OUT)
        assert store.get(job.job_id).state == TIMED_OUT


class TestExactlyOnce:
    def test_late_result_is_ignored_not_applied(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        store.claim(job.job_id)
        store.finish(job.job_id, {"first": True})
        # a zombie worker reporting after resolution must be dropped
        assert not store.finish(job.job_id, {"second": True})
        assert not store.fail(job.job_id, "late", "issues")
        assert store.get(job.job_id).result == {"first": True}
        assert store.counters()["ignored_results"] == 2

    def test_finish_without_claim_is_ignored(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        assert not store.finish(job.job_id, {"sneaky": True})
        assert store.get(job.job_id).state == SUBMITTED


class TestDedup:
    def test_cached_result_answers_immediately(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        store.claim(job.job_id)
        store.finish(job.job_id, {"answer": 42})
        duplicate, dedup = store.submit("verify", PARAMS, KEY)
        assert dedup and duplicate.state == DONE
        assert duplicate.result == {"answer": 42}
        assert duplicate.job_id != job.job_id  # audit trail keeps both
        assert store.counters()["dedup_hits"] == 1

    def test_live_job_coalesces(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        duplicate, dedup = store.submit("verify", PARAMS, KEY)
        assert dedup and duplicate.job_id == job.job_id
        assert store.counters()["executions"] == 0  # still just queued

    def test_would_dedup_tracks_cache_and_live_jobs(self, store):
        assert not store.would_dedup(KEY)
        job, __ = store.submit("verify", PARAMS, KEY)
        assert store.would_dedup(KEY)
        store.claim(job.job_id)
        store.finish(job.job_id, {"answer": 42})
        assert store.would_dedup(KEY)
        assert not store.would_dedup("job:other")


class TestRecovery:
    def test_running_jobs_return_to_queue_with_attempts(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        store = JobStore(path)
        job, __ = store.submit("verify", PARAMS, KEY)
        store.claim(job.job_id)
        # no close(): simulate the process dying with the WAL open
        reopened = JobStore(path)
        assert reopened.recover() == 1
        recovered = reopened.get(job.job_id)
        assert recovered.state == SUBMITTED
        assert recovered.attempts == 1  # preserved: no crash-loop forever
        reopened.close()
        store.close()

    def test_release_for_retry_counts(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        store.claim(job.job_id)
        assert store.release_for_retry(job.job_id, error="worker died")
        again = store.get(job.job_id)
        assert again.state == SUBMITTED and again.error == "worker died"
        assert store.counters()["retries"] == 1


class TestHealing:
    def _finished_job(self, store):
        job, __ = store.submit("verify", PARAMS, KEY)
        store.claim(job.job_id)
        store.finish(job.job_id, {"answer": 42})
        return job

    def test_torn_result_row_heals_to_resubmission(self, store):
        job = self._finished_job(store)
        assert store.corrupt_result_row(KEY)
        healed = store.get(job.job_id)
        assert healed.state == SUBMITTED
        assert store.counters()["quarantined_rows"] >= 1
        # and the cached result is gone, so a new submission re-executes
        assert not store.would_dedup(KEY) or store.get(job.job_id).state == SUBMITTED

    def test_torn_cached_result_quarantined_on_submit(self, store):
        self._finished_job(store)
        store.corrupt_result_row(KEY)
        duplicate, dedup = store.submit("verify", PARAMS, KEY)
        # the torn cache row must never be served; the submission
        # coalesces onto the healed (resubmitted) original instead
        assert duplicate.state != DONE or duplicate.result is not None

    def test_corrupt_database_file_is_quarantined(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        store = JobStore(path)
        store.submit("verify", PARAMS, KEY)
        store.close()
        path.write_text("this is not a database")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            fresh = JobStore(path)
        assert fresh.counts()["SUBMITTED"] == 0  # cold start
        assert list(tmp_path.glob("jobs.sqlite3.corrupt-*"))
        fresh.close()


class TestQueue:
    def test_fifo_dispatch_with_exclusions(self, store):
        first, __ = store.submit("verify", PARAMS, "job:1")
        second, __ = store.submit("verify", PARAMS, "job:2")
        assert store.next_pending().job_id == first.job_id
        assert store.next_pending(exclude=[first.job_id]).job_id == second.job_id
        assert store.next_pending(exclude=[first.job_id, second.job_id]) is None

    def test_depth_and_client_load(self, store):
        store.submit("verify", PARAMS, "job:1", client="alice")
        store.submit("verify", PARAMS, "job:2", client="alice")
        store.submit("verify", PARAMS, "job:3", client="bob")
        assert store.queue_depth() == 3
        assert store.client_load("alice") == 2
        assert store.client_load("carol") == 0

    def test_stats_shape(self, store):
        store.submit("verify", PARAMS, KEY)
        store.submit("verify", PARAMS, KEY)
        stats = store.stats()
        assert stats["submissions"] == 2
        assert stats["dedup_hit_rate"] == 0.5
        assert stats["states"]["SUBMITTED"] == 1


def _race_submitter(path: str, index: int, barrier, queue) -> None:
    store = JobStore(path)
    barrier.wait()
    job, dedup = store.submit("verify", dict(PARAMS), KEY, client=f"p{index}")
    queue.put((job.job_id, dedup))
    store.close()


class TestConcurrentProcesses:
    def test_racing_submitters_coalesce_to_one_execution(self, tmp_path):
        """N processes submitting the same key: one job, N-1 dedups."""
        path = str(tmp_path / "jobs.sqlite3")
        racers = 4
        barrier = multiprocessing.Barrier(racers)
        queue = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(
                target=_race_submitter, args=(path, index, barrier, queue)
            )
            for index in range(racers)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert all(worker.exitcode == 0 for worker in workers)
        outcomes = [queue.get(timeout=10) for _ in range(racers)]
        job_ids = {job_id for job_id, __ in outcomes}
        assert len(job_ids) == 1  # everyone coalesced onto one job
        store = JobStore(path)
        assert store.counts()["SUBMITTED"] == 1
        assert store.counters()["dedup_hits"] == racers - 1
        store.close()
