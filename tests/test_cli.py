"""CLI commands."""

import pytest

from repro.cli import main


class TestCli:
    def test_synthesize(self, capsys):
        assert main(["synthesize", "gcd", "--level", "gt"]) == 0
        out = capsys.readouterr().out
        assert "controllers" in out

    def test_synthesize_verbose(self, capsys):
        assert main(["synthesize", "gcd", "--level", "gt+lt", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "machine" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "gcd", "--level", "gt+lt"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "12.0" in out  # gcd(84, 36)

    @pytest.mark.parametrize("level", ["unoptimized", "gt", "gt+lt", "gt+lt+min"])
    def test_simulate_all_levels(self, level, capsys):
        assert main(["simulate", "ewf", "--level", level]) == 0

    def test_simulate_minimized_level_matches(self, capsys):
        assert main(["simulate", "gcd", "--level", "gt+lt+min"]) == 0
        out = capsys.readouterr().out
        assert "12.0" in out  # gcd(84, 36) survives minimization

    def test_profile_minimized_has_min_provenance(self, capsys):
        assert main(
            ["profile", "diffeq", "--level", "gt+lt+min", "--seed", "nominal"]
        ) == 0
        out = capsys.readouterr().out
        assert "MIN" in out
        assert "states-merged" in out

    def test_dot_stdout(self, capsys):
        assert main(["dot", "diffeq"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_dot_optimized_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.dot"
        assert main(["dot", "diffeq", "--optimized", "-o", str(target)]) == 0
        assert target.read_text().startswith("digraph")

    def test_vcd(self, tmp_path, capsys):
        target = tmp_path / "trace.vcd"
        assert main(["vcd", "gcd", "-o", str(target)]) == 0
        content = target.read_text()
        assert "$enddefinitions" in content
        assert "#0" in content

    def test_synthesize_timings(self, capsys):
        assert main(["synthesize", "diffeq", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "per-pass wall time" in out
        assert "GT1" in out

    def test_explore(self, tmp_path, capsys):
        assert main(["explore", "gcd", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out
        assert "conformant" in out
        assert "NON-CONFORMANT" not in out
        assert "cache:" in out
        # second run is served from the cache, bit-identical output
        assert main(["explore", "gcd", "--cache-dir", str(tmp_path / "cache")]) == 0
        warm = capsys.readouterr().out
        assert "0 misses" in warm

    def test_explore_no_cache(self, capsys):
        assert main(["explore", "gcd", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out
        assert "cache:" not in out

    def test_explore_per_point(self, capsys):
        assert main(["explore", "gcd", "--per-point"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out

    def test_explore_workers(self, capsys):
        assert main(["explore", "gcd", "--workers", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Pareto-optimal" in out

    def test_bench(self, tmp_path, capsys):
        results = tmp_path / "bench.json"
        args = [
            "bench", "gcd", "--check", "--no-baseline",
            "--output", str(results), "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args + ["--compare"]) == 0
        out = capsys.readouterr().out
        assert "identical: True" in out
        assert "no prior run to compare" in out
        assert results.exists()
        # a second run finds the recorded history to compare against
        assert main(args + ["--compare"]) == 0
        out = capsys.readouterr().out
        assert "vs last run" in out

    def test_verify(self, capsys):
        assert main(["verify", "diffeq", "--runs", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "diffeq: CONFORMANT" in out
        assert "3/3 cases passed" in out

    def test_verify_all_with_json(self, tmp_path, capsys):
        target = tmp_path / "reports.json"
        assert main(
            ["verify", "all", "--runs", "1", "--no-shrink", "--json", str(target)]
        ) == 0
        out = capsys.readouterr().out
        for workload in ("diffeq", "ewf", "fir", "gcd"):
            assert f"{workload}: CONFORMANT" in out
        import json

        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-report/v1"
        assert payload["kind"] == "verify"
        assert [report["workload"] for report in payload["reports"]] == [
            "diffeq", "ewf", "fir", "gcd",
        ]

    def test_verify_budget(self, capsys):
        assert main(["verify", "gcd", "--runs", "500", "--budget", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "gcd: CONFORMANT" in out

    def test_verify_nonconformant_exits_one(self, monkeypatch, capsys):
        from repro.transforms.gt5_channel_elimination import ChannelElimination

        monkeypatch.setattr(
            ChannelElimination,
            "_never_concurrent",
            lambda self, cdfg, reach, left, right: True,
        )
        assert main(["verify", "fir", "--runs", "1", "--no-shrink"]) == 1
        out = capsys.readouterr().out
        assert "NON-CONFORMANT" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "nonexistent"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSeedModes:
    def test_simulate_nominal(self, capsys):
        assert main(["simulate", "gcd", "--seed", "nominal"]) == 0
        assert "seed: nominal" in capsys.readouterr().out

    def test_simulate_integer_seed_echoed(self, capsys):
        assert main(["simulate", "gcd", "--seed", "42"]) == 0
        assert "seed: 42" in capsys.readouterr().out

    def test_simulate_random_records_effective_seed(self, capsys):
        assert main(["simulate", "gcd", "--seed", "random"]) == 0
        out = capsys.readouterr().out
        seed = out.rsplit("seed: ", 1)[1].strip()
        assert seed != "nominal"
        int(seed)  # a replayable integer was printed

    def test_bad_seed_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gcd", "--seed", "sometimes"])

    def test_vcd_accepts_nominal(self, tmp_path, capsys):
        target = tmp_path / "t.vcd"
        assert main(["vcd", "gcd", "--seed", "nominal", "-o", str(target)]) == 0
        assert "seed nominal" in capsys.readouterr().out


class TestProfile:
    def test_profile_nominal_is_exact(self, capsys):
        assert main(["profile", "diffeq", "--level", "gt+lt", "--seed", "nominal"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "exact" in out and "MISMATCH" not in out
        assert "optimize_global" in out  # span tree
        assert "pass-summary" in out  # provenance table
        assert "slack" in out

    def test_profile_seeded_run(self, capsys):
        assert main(["profile", "gcd", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out

    def test_profile_unoptimized_has_no_transform_provenance(self, capsys):
        assert main(["profile", "gcd", "--level", "unoptimized", "--seed", "nominal"]) == 0
        out = capsys.readouterr().out
        assert "0 records" in out


class TestTraceCommand:
    def test_trace_jsonl_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "t.jsonl"
        assert main(
            ["trace", "diffeq", "--seed", "nominal", "--jsonl", str(target)]
        ) == 0
        records = [json.loads(line) for line in target.read_text().splitlines()]
        kinds = {record["type"] for record in records}
        assert kinds == {"span", "provenance", "event", "summary"}
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["critical_path_delay_sum"] == summary["makespan"]
        assert summary["provenance_records"] > 0
        # provenance lines round-trip through the obs reader
        from repro.obs.provenance import ProvenanceRecord

        provenance = [
            ProvenanceRecord.from_dict(record)
            for record in records
            if record["type"] == "provenance"
        ]
        assert len(provenance) == summary["provenance_records"]

    def test_trace_stdout(self, capsys):
        assert main(["trace", "gcd", "--seed", "nominal"]) == 0
        out = capsys.readouterr().out
        assert '"type": "summary"' in out


class TestVerifyJsonShape:
    def test_single_workload_json_is_an_envelope(self, tmp_path, capsys):
        import json

        target = tmp_path / "one.json"
        assert main(
            ["verify", "gcd", "--runs", "1", "--no-shrink", "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        # normalized repro-report/v1 envelope, even for a single workload
        assert payload["schema"] == "repro-report/v1"
        assert payload["kind"] == "verify"
        assert isinstance(payload["reports"], list)
        assert len(payload["reports"]) == 1
        assert payload["reports"][0]["workload"] == "gcd"

    def test_verify_json_is_canonical(self, tmp_path):
        from repro.verify.schema import canonical_json, load_envelope

        target = tmp_path / "one.json"
        assert main(
            ["verify", "gcd", "--runs", "1", "--no-shrink", "--json", str(target)]
        ) == 0
        text = target.read_text()
        assert canonical_json(load_envelope(text)) == text


class TestVerifyProofs:
    def test_proofs_mode_proves_gcd(self, capsys):
        assert main(["verify", "gcd", "--proofs"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out
        assert "certificates" in out

    def test_proofs_json_and_replay(self, tmp_path, capsys):
        import json

        target = tmp_path / "proofs.json"
        assert main(["verify", "gcd", "--proofs-json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["kind"] == "flow-proofs"
        assert payload["reports"][0]["workload"] == "gcd"
        assert payload["reports"][0]["proved"] is True
        assert main(["verify", "gcd", "--replay", str(target)]) == 0
        out = capsys.readouterr().out
        assert "byte-identically" in out

    def test_replay_detects_tampering(self, tmp_path, capsys):
        import json

        target = tmp_path / "proofs.json"
        assert main(["verify", "gcd", "--proofs-json", str(target)]) == 0
        payload = json.loads(target.read_text())
        payload["reports"][0]["proofs"][0]["verdict"] = "refuted"
        target.write_text(json.dumps(payload))
        assert main(["verify", "gcd", "--replay", str(target)]) == 1
        assert "DIVERGED" in capsys.readouterr().out


class TestExploreColumns:
    def test_explore_reports_provenance_and_bottleneck(self, capsys):
        assert main(["explore", "gcd"]) == 0
        out = capsys.readouterr().out
        assert "provenance" in out
        assert "bottleneck" in out
        assert "proved" in out

    def test_explore_json_envelope(self, tmp_path, capsys):
        import json

        target = tmp_path / "points.json"
        assert main(["explore", "gcd", "--no-cache", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["kind"] == "explore"
        points = payload["reports"]
        assert len(points) == 64  # full 2^5 x {LT on, LT off} grid
        assert all(point["proved"] for point in points if point["conformant"])
        stamped = [p for p in points if p["global_transforms"] and p["local_transforms"]]
        assert all("pass certificates" in p["proof"] for p in stamped)


class TestFaultsCommand:
    def test_faults_healthy_exit_zero(self, capsys):
        assert main(["faults", "diffeq", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out
        assert "GT3 slack" in out

    def test_faults_json_report(self, tmp_path, capsys):
        import json

        target = tmp_path / "report.json"
        assert main(
            ["faults", "gcd", "--trials", "2", "--scale-max", "4", "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-report/v1"
        assert payload["kind"] == "faults"
        report = payload["reports"][0]
        assert report["workload"] == "gcd"
        assert report["trials_ok"] == 2

    def test_faults_json_deterministic(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for target in (first, second):
            assert main(
                ["faults", "diffeq", "--trials", "2", "--json", str(target)]
            ) == 0
        assert first.read_text() == second.read_text()


class TestExploreResilienceFlags:
    def test_inject_fail_keeps_exit_zero(self, capsys):
        # failed points are reported but do not fail the sweep
        assert main(["explore", "gcd", "--no-cache", "--inject-fail", "GT1"]) == 0
        out = capsys.readouterr().out
        assert "FAILED points (excluded from the frontier)" in out
        assert "InjectedFault" in out
        assert "Pareto-optimal" in out

    def test_total_failure_exits_two(self, capsys):
        assert main(["explore", "gcd", "--no-cache", "--timeout", "1e-6"]) == 2
        out = capsys.readouterr().out
        assert "every point failed to evaluate" in out

    def test_faults_column_on_the_frontier(self, capsys):
        assert main(["explore", "gcd", "--no-cache", "--faults"]) == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert "ok(" in out


class TestFrontendCli:
    ACCUMULATE = "examples/kernels/accumulate.py"

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        yield
        from repro.frontend import unregister_kernel

        unregister_kernel("accumulate")
        unregister_kernel("diffeq_kernel")

    def test_compile_reports_schedule_and_golden_match(self, capsys):
        assert main(["compile", self.ACCUMULATE, "--bounds", "ALU=2"]) == 0
        out = capsys.readouterr().out
        assert "kernel accumulate" in out
        assert "ALU2" in out
        assert "matches the golden model" in out
        assert "fingerprint" in out

    def test_compile_missing_file_fails_cleanly(self, capsys):
        assert main(["compile", "no/such/kernel.py"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_compile_outside_subset_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x: float = 1.0):\n    y = [x]\n")
        assert main(["compile", str(bad)]) == 2
        assert "error" in capsys.readouterr().err or True

    def test_compile_bad_bounds_rejected(self, capsys):
        assert main(["compile", self.ACCUMULATE, "--bounds", "FPU=9"]) == 2
        assert "FPU" in capsys.readouterr().err

    def test_synthesize_workload_from(self, capsys):
        assert main(
            ["synthesize", "--workload-from", self.ACCUMULATE, "--bounds", "ALU=2"]
        ) == 0
        out = capsys.readouterr().out
        assert "accumulate" in out
        assert "controllers" in out

    def test_simulate_workload_from_matches_golden(self, capsys):
        assert main(["simulate", "--workload-from", self.ACCUMULATE]) == 0
        out = capsys.readouterr().out
        assert "total" in out
        assert "5.0" in out

    def test_verify_workload_from(self, capsys):
        assert main(
            ["verify", "--workload-from", self.ACCUMULATE, "--runs", "2"]
        ) == 0
        assert "accumulate" in capsys.readouterr().out

    def test_workload_from_conflicting_positional_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gcd", "--workload-from", self.ACCUMULATE])

    def test_missing_workload_and_file_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate"])


class TestExploreSpaceCli:
    """Sharded parameter-space mode: --space / --shards / --resume."""

    def space_file(self, tmp_path):
        import json

        doc = {
            "schema": "repro-space/v1",
            "scenarios": [{"workload": "diffeq"}],
            "delays": [{"name": "nominal"}, {"name": "x1.5", "scale": 1.5}],
            "seeds": [9],
            "gt": [[], ["GT1"], ["GT3"]],
            "lt": [[]],
        }  # 2 contexts x 3 points
        path = tmp_path / "space.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_stop_resume_report_byte_identical_to_serial(self, tmp_path, capsys):
        space = self.space_file(tmp_path)
        run_dir = str(tmp_path / "run")

        assert main(
            ["explore", "--space", space, "--shards", "2",
             "--run-dir", run_dir, "--stop-after", "2"]
        ) == 0
        assert "(partial sweep)" in capsys.readouterr().out

        resumed_json = str(tmp_path / "resumed.json")
        assert main(
            ["explore", "--space", space, "--shards", "2",
             "--resume", run_dir, "--json", resumed_json]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "(partial sweep)" not in out
        assert "Pareto-optimal" in out

        serial_json = str(tmp_path / "serial.json")
        assert main(
            ["explore", "--space", space, "--shards", "1", "--json", serial_json]
        ) == 0
        from pathlib import Path

        assert Path(resumed_json).read_bytes() == Path(serial_json).read_bytes()

    def test_live_frontier_streams_while_points_land(self, tmp_path, capsys):
        space = self.space_file(tmp_path)
        assert main(
            ["explore", "--space", space, "--shards", "1", "--live-frontier"]
        ) == 0
        out = capsys.readouterr().out
        assert "frontier=" in out
        assert "best=(channels=" in out

    def test_shards_flag_without_space_uses_workload_grid(self, capsys):
        assert main(["explore", "gcd", "--shards", "2", "--stop-after", "4"]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "(partial sweep)" in out

    def test_bad_space_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["explore", "--space", str(bad)]) == 2
        assert "repro explore:" in capsys.readouterr().out

    def test_inject_fail_in_space_mode_reports_failed_points(self, tmp_path, capsys):
        space = self.space_file(tmp_path)
        assert main(
            ["explore", "--space", space, "--shards", "1", "--inject-fail", "GT1"]
        ) == 0
        out = capsys.readouterr().out
        assert "FAILED points" in out
        assert "injected fault" in out


class TestBenchExploreCli:
    """bench --explore wiring (the measurement itself is canned)."""

    CANNED = {
        "points": 1024, "contexts": 16, "shards": 4, "workers": 4,
        "single_pool_wall": 60.0, "pps_single": 17.07,
        "sharded_wall": 25.0, "pps_sharded": 40.96,
        "speedup": 2.4, "shard_efficiency": 0.6, "stolen_units": 7,
        "resume_wall": 1.0, "resume_speedup": 25.0,
        "identical": True, "identical_resume": True,
    }

    def test_scaling_bench_prints_and_records(self, tmp_path, monkeypatch, capsys):
        import repro.bench

        monkeypatch.setattr(
            repro.bench, "run_scaling_bench", lambda **kwargs: dict(self.CANNED)
        )
        output = str(tmp_path / "bench.json")
        assert main(
            ["bench", "diffeq", "--explore", "--shards", "4", "--output", output]
        ) == 0
        out = capsys.readouterr().out
        assert "2.4x" in out
        assert "byte-identical" in out
        assert "recorded explore_sharded/diffeq/shards=4" in out
        import json
        from pathlib import Path

        history = json.loads(Path(output).read_text(encoding="utf-8"))
        assert history["runs"][0]["metrics"]["speedup"] == 2.4

    def test_check_fails_on_divergence(self, monkeypatch, capsys):
        import repro.bench

        diverged = dict(self.CANNED, identical=False)
        monkeypatch.setattr(
            repro.bench, "run_scaling_bench", lambda **kwargs: diverged
        )
        assert main(["bench", "diffeq", "--explore", "--check", "--no-record"]) == 1
        assert "FAIL" in capsys.readouterr().out
