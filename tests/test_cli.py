"""CLI commands."""

import pytest

from repro.cli import main


class TestCli:
    def test_synthesize(self, capsys):
        assert main(["synthesize", "gcd", "--level", "gt"]) == 0
        out = capsys.readouterr().out
        assert "controllers" in out

    def test_synthesize_verbose(self, capsys):
        assert main(["synthesize", "gcd", "--level", "gt+lt", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "machine" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "gcd", "--level", "gt+lt"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "12.0" in out  # gcd(84, 36)

    @pytest.mark.parametrize("level", ["unoptimized", "gt", "gt+lt"])
    def test_simulate_all_levels(self, level, capsys):
        assert main(["simulate", "ewf", "--level", level]) == 0

    def test_dot_stdout(self, capsys):
        assert main(["dot", "diffeq"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_dot_optimized_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.dot"
        assert main(["dot", "diffeq", "--optimized", "-o", str(target)]) == 0
        assert target.read_text().startswith("digraph")

    def test_vcd(self, tmp_path, capsys):
        target = tmp_path / "trace.vcd"
        assert main(["vcd", "gcd", "-o", str(target)]) == 0
        content = target.read_text()
        assert "$enddefinitions" in content
        assert "#0" in content

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "nonexistent"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
