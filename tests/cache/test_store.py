"""ArtifactCache disk behaviour: load/save round-trips and quarantine."""

import json
import warnings

import pytest

from repro.cache.store import ArtifactCache


def _write(tmp_path, text):
    path = tmp_path / "explore.json"
    path.write_text(text, encoding="utf-8")
    return path


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("k1", {"makespan": 40.5})
        cache.save()
        again = ArtifactCache(str(tmp_path))
        assert again.get("k1") == {"makespan": 40.5}
        assert again.loaded_entries == 1

    def test_missing_file_is_cold(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        assert cache.load() == 0


class TestQuarantine:
    def test_invalid_json_is_quarantined_with_a_warning(self, tmp_path):
        path = _write(tmp_path, "{not json!!")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt artifact cache"):
            cache = ArtifactCache(str(tmp_path))
        assert len(cache) == 0
        assert not path.exists()
        quarantined = list(tmp_path.glob("explore.json.corrupt-*"))
        assert len(quarantined) == 1
        # the evidence is preserved verbatim for post-mortem
        assert quarantined[0].read_text(encoding="utf-8") == "{not json!!"

    def test_non_object_payload_is_quarantined(self, tmp_path):
        _write(tmp_path, "[1, 2, 3]")
        with pytest.warns(RuntimeWarning, match="not an object"):
            ArtifactCache(str(tmp_path))
        assert list(tmp_path.glob("explore.json.corrupt-*"))

    def test_bad_entries_section_is_quarantined(self, tmp_path):
        _write(tmp_path, json.dumps({"version": 1, "entries": "oops"}))
        with pytest.warns(RuntimeWarning, match="'entries' is not an object"):
            ArtifactCache(str(tmp_path))
        assert list(tmp_path.glob("explore.json.corrupt-*"))

    def test_repeated_corruption_never_clobbers_evidence(self, tmp_path):
        _write(tmp_path, "first corruption")
        with pytest.warns(RuntimeWarning):
            ArtifactCache(str(tmp_path))
        _write(tmp_path, "second corruption")
        with pytest.warns(RuntimeWarning):
            ArtifactCache(str(tmp_path))
        quarantined = sorted(tmp_path.glob("explore.json.corrupt-*"))
        assert len(quarantined) == 2
        texts = {q.read_text(encoding="utf-8") for q in quarantined}
        assert texts == {"first corruption", "second corruption"}

    def test_version_mismatch_is_not_corruption(self, tmp_path):
        path = _write(tmp_path, json.dumps({"version": 999, "entries": {}}))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            cache = ArtifactCache(str(tmp_path))
        assert len(cache) == 0
        assert path.exists()  # the other format's file is left alone

    def test_quarantined_run_can_still_save(self, tmp_path):
        _write(tmp_path, "garbage")
        with pytest.warns(RuntimeWarning):
            cache = ArtifactCache(str(tmp_path))
        cache.put("k1", {"makespan": 1.0})
        cache.save()
        fresh = ArtifactCache(str(tmp_path))
        assert fresh.get("k1") == {"makespan": 1.0}
