"""Streaming Pareto skyline vs the end-of-run sort-based frontier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.frontier import StreamingFrontier
from repro.explore import DesignPoint, ExplorationResult, failed_point


def point(channels, states, makespan, tag="", status="ok"):
    return DesignPoint(
        global_transforms=("GT1", tag) if tag else ("GT1",),
        local_transforms=(),
        channels=channels,
        total_states=states,
        total_transitions=0,
        makespan=float(makespan),
        status=status,
    )


objective_points = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=24,
)


@settings(max_examples=200, deadline=None)
@given(objectives=objective_points, order_seed=st.randoms(use_true_random=False))
def test_streaming_skyline_matches_sorted_frontier_in_any_order(
    objectives, order_seed
):
    points = [
        point(c, s, m, tag=f"p{i}") for i, (c, s, m) in enumerate(objectives)
    ]
    reference = ExplorationResult(points=list(points))
    expected = {
        (p.objectives(), p.global_transforms) for p in reference.pareto_points()
    }

    shuffled = list(points)
    order_seed.shuffle(shuffled)
    frontier = StreamingFrontier()
    for p in shuffled:
        frontier.add(p)

    got = {(p.objectives(), p.global_transforms) for p in frontier.points()}
    assert got == expected
    assert len(frontier) == len(expected)
    if expected:
        assert frontier.best().objectives() == min(
            p.objectives() for p in reference.pareto_points()
        )
    else:
        assert frontier.best() is None


def test_failed_points_never_enter_the_skyline():
    frontier = StreamingFrontier()
    assert not frontier.add(failed_point(("GT1",), (), "boom"))
    assert not frontier.add(point(0, 0, 0, status="failed"))
    assert len(frontier) == 0
    assert frontier.offered == 0
    assert frontier.best() is None


def test_dominated_arrival_is_rejected_and_dominator_evicts():
    frontier = StreamingFrontier()
    assert frontier.add(point(2, 2, 2.0, "a"))
    assert not frontier.add(point(3, 3, 3.0, "worse"))  # dominated
    assert frontier.add(point(1, 2, 2.0, "b"))  # dominates a -> evicts it
    labels = {p.global_transforms[-1] for p in frontier.points()}
    assert labels == {"b"}
    assert frontier.best().global_transforms[-1] == "b"
    assert frontier.offered == 3
    assert frontier.accepted == 2


def test_ties_are_all_kept():
    frontier = StreamingFrontier()
    assert frontier.add(point(1, 1, 1.0, "a"))
    assert frontier.add(point(1, 1, 1.0, "b"))
    assert len(frontier) == 2
    # best() is the earliest arrival among equal objectives
    assert frontier.best().global_transforms[-1] == "a"


def test_best_survives_eviction_churn():
    frontier = StreamingFrontier()
    frontier.add(point(5, 5, 5.0, "a"))
    frontier.add(point(4, 4, 4.0, "b"))  # evicts a
    frontier.add(point(3, 3, 3.0, "c"))  # evicts b
    frontier.add(point(0, 9, 9.0, "d"))  # incomparable, lexicographically first
    assert frontier.best().global_transforms[-1] == "d"
    assert len(frontier) == 2
