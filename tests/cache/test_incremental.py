"""Cold/warm/incremental equivalence of the exploration engine.

The contract under test: the shared-prefix engine, with or without a
persistent cache, produces DesignPoint lists *bit-identical* to the
historical per-point path — same metrics, same conformance stamps, same
bottleneck labels, same provenance counts, same order.
"""

import json

import pytest

from repro.cache import ArtifactCache
from repro.explore import explore_design_space
from repro.timing.delays import DelayModel
from repro.workloads import build_diffeq_cdfg, diffeq_reference

GT_SUBSETS = [(), ("GT1",), ("GT1", "GT2"), ("GT2", "GT3"), ("GT1", "GT2", "GT3", "GT4", "GT5")]
LT_SUBSETS = [(), ("LT4", "LT2", "LT1", "LT5")]


def _sweep(cdfg, **kwargs):
    kwargs.setdefault("global_subsets", GT_SUBSETS)
    kwargs.setdefault("local_subsets", LT_SUBSETS)
    kwargs.setdefault("reference", diffeq_reference())
    return explore_design_space(cdfg, **kwargs)


class TestIncrementalEquivalence:
    def test_matches_per_point_path(self, diffeq):
        baseline = _sweep(diffeq, incremental=False)
        incremental = _sweep(diffeq, incremental=True)
        assert incremental.points == baseline.points

    def test_conformance_and_bottleneck_survive(self, diffeq):
        for point in _sweep(diffeq, incremental=True).points:
            assert point.conformance == "conformant"
            assert point.conformant
            assert point.bottleneck

    def test_non_canonical_subset_order(self, diffeq):
        subsets = [("GT2", "GT1"), ("GT5", "GT3")]
        baseline = _sweep(diffeq, global_subsets=subsets, incremental=False)
        incremental = _sweep(diffeq, global_subsets=subsets, incremental=True)
        assert incremental.points == baseline.points
        # the *reported* subset keeps the caller's spelling
        assert incremental.points[0].global_transforms == ("GT2", "GT1")

    def test_unknown_transform_rejected(self, diffeq):
        with pytest.raises(KeyError):
            _sweep(diffeq, global_subsets=[("GT9",)], incremental=True)
        with pytest.raises(KeyError):
            _sweep(diffeq, local_subsets=[("LT9",)], incremental=True)

    def test_parallel_matches_serial(self, diffeq):
        serial = _sweep(diffeq, incremental=True)
        parallel = _sweep(diffeq, incremental=True, workers=2)
        assert parallel.points == serial.points

    def test_shares_work_across_grid(self, diffeq):
        result = _sweep(diffeq, incremental=True)
        points = len(GT_SUBSETS) * len(LT_SUBSETS)
        assert len(result.points) == points
        # distinct transform applications <= trie edges < per-point total
        assert result.stats["edges"] <= sum(len(s) for s in GT_SUBSETS)
        assert result.stats["evaluations"] <= points


class TestWarmCache:
    def test_cold_vs_warm_bit_identical(self, diffeq, tmp_path):
        cold = _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        warm = _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        assert warm.points == cold.points
        # equality above is field-by-field on frozen dataclasses, so it
        # already covers conformance stamps and bottleneck labels; make
        # the two headline fields explicit anyway
        for a, b in zip(cold.points, warm.points):
            assert a.conformance == b.conformance
            assert a.bottleneck == b.bottleneck
            assert a.makespan == b.makespan

    def test_warm_run_computes_nothing(self, diffeq, tmp_path):
        _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        warm = _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        assert warm.stats["evaluations"] == 0
        assert warm.stats["edges"] == 0
        assert warm.stats["cache"]["hits"] > 0
        assert warm.stats["cache"]["misses"] == 0

    def test_cache_file_round_trips(self, diffeq, tmp_path):
        cold = _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        path = tmp_path / "cache" / "explore.json"
        assert path.exists()
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert len(data["entries"]) == cold.stats["cache"]["entries"]

    def test_corrupt_cache_degrades_to_cold(self, diffeq, tmp_path):
        cold = _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        (tmp_path / "cache" / "explore.json").write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt artifact cache"):
            again = _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        assert again.points == cold.points
        assert again.stats["evaluations"] > 0

    def test_cdfg_mutation_invalidates(self, tmp_path):
        _sweep(build_diffeq_cdfg(), cache_dir=str(tmp_path / "cache"))
        nudged = explore_design_space(
            build_diffeq_cdfg({"x0": 99.0}),
            global_subsets=GT_SUBSETS,
            local_subsets=LT_SUBSETS,
            cache_dir=str(tmp_path / "cache"),
        )
        assert nudged.stats["evaluations"] > 0

    def test_delay_mutation_invalidates(self, diffeq, tmp_path):
        _sweep(diffeq, cache_dir=str(tmp_path / "cache"))
        tweaked = _sweep(
            diffeq,
            delays=DelayModel(overrides={("MUL1", None): (5.0, 7.0)}),
            cache_dir=str(tmp_path / "cache"),
        )
        assert tweaked.stats["evaluations"] > 0

    def test_shared_cache_object(self, diffeq):
        cache = ArtifactCache()  # purely in-process
        cold = _sweep(diffeq, cache=cache)
        warm = _sweep(diffeq, cache=cache)
        assert warm.points == cold.points
        assert warm.stats["evaluations"] == 0
