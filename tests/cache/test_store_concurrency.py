"""Concurrent writers against the artifact cache and the bench history.

The shard runner and ``repro bench`` both append from multiple
processes; the contracts under test:

- concurrent ``ArtifactCache.save(merge=True)`` calls converge to the
  *union* of everyone's entries — no writer clobbers another;
- identical content-addressed records written by racing processes
  converge to exactly one valid entry;
- a reader racing writers can never observe a torn mirror (the rename
  is atomic), so it must never quarantine a healthy file;
- two loaders racing to quarantine the *same* corrupt mirror both
  proceed cold, and exactly one quarantine file preserves the evidence;
- concurrent :func:`repro.bench.record` appenders all land in the
  history (read-append-rename under the advisory lock).
"""

import json
import multiprocessing
import warnings
from pathlib import Path

from repro.bench import record
from repro.cache.store import ArtifactCache

WRITERS = 4
ROUNDS = 5


def _union_writer(directory: str, index: int, barrier) -> None:
    cache = ArtifactCache(directory)
    cache.put(f"own-{index}", {"writer": index})
    # the same content-addressed key from every writer, identical record
    cache.put("shared", {"makespan": 4.25})
    barrier.wait()
    cache.save()


def _churn_writer(directory: str, index: int, barrier) -> None:
    barrier.wait()
    for round_no in range(ROUNDS):
        cache = ArtifactCache(directory)
        cache.put(f"w{index}-r{round_no}", {"round": round_no})
        cache.save()


def _quarantine_loader(directory: str, barrier, queue) -> None:
    barrier.wait()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cache = ArtifactCache(directory)
    queue.put(len(cache))


def _bench_writer(path: str, index: int, barrier) -> None:
    barrier.wait()
    for round_no in range(ROUNDS):
        record(f"bench-{index}", 0.5, path=Path(path), round=round_no)


def _spawn(target, args_for):
    barrier = multiprocessing.Barrier(WRITERS)
    workers = [
        multiprocessing.Process(target=target, args=args_for(index, barrier))
        for index in range(WRITERS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
    assert all(worker.exitcode == 0 for worker in workers)


def test_concurrent_saves_converge_to_the_union(tmp_path):
    _spawn(_union_writer, lambda i, b: (str(tmp_path), i, b))
    final = ArtifactCache(str(tmp_path))
    expected = {f"own-{index}" for index in range(WRITERS)} | {"shared"}
    assert set(final.memory) == expected
    assert final.get("shared") == {"makespan": 4.25}
    # the mirror is one valid JSON document, not an interleaving
    payload = json.loads((tmp_path / "explore.json").read_text(encoding="utf-8"))
    assert set(payload["entries"]) == expected


def test_reader_never_sees_a_torn_mirror_under_churn(tmp_path):
    ArtifactCache(str(tmp_path)).save()  # seed the file
    barrier = multiprocessing.Barrier(WRITERS + 1)
    workers = [
        multiprocessing.Process(
            target=_churn_writer, args=(str(tmp_path), index, barrier)
        )
        for index in range(WRITERS)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a quarantine warning fails the test
        while any(worker.is_alive() for worker in workers):
            ArtifactCache(str(tmp_path))
    for worker in workers:
        worker.join(timeout=60)
    assert all(worker.exitcode == 0 for worker in workers)
    assert not list(tmp_path.glob("explore.json.corrupt-*"))
    final = ArtifactCache(str(tmp_path))
    assert len(final) == WRITERS * ROUNDS


def test_racing_quarantines_keep_exactly_one_evidence_file(tmp_path):
    (tmp_path / "explore.json").write_text("{definitely not json", encoding="utf-8")
    queue = multiprocessing.Queue()
    _spawn(_quarantine_loader, lambda i, b: (str(tmp_path), b, queue))
    # every racing loader proceeded cold
    assert [queue.get(timeout=10) for _ in range(WRITERS)] == [0] * WRITERS
    evidence = list(tmp_path.glob("explore.json.corrupt-*"))
    assert len(evidence) == 1
    assert evidence[0].read_text(encoding="utf-8") == "{definitely not json"
    assert not (tmp_path / "explore.json").exists()


def test_concurrent_bench_records_all_land(tmp_path):
    path = tmp_path / "BENCH_scaling.json"
    _spawn(_bench_writer, lambda i, b: (str(path), i, b))
    history = json.loads(path.read_text(encoding="utf-8"))
    assert len(history["runs"]) == WRITERS * ROUNDS
    by_bench = {}
    for entry in history["runs"]:
        by_bench.setdefault(entry["bench"], []).append(entry["metrics"]["round"])
    # every writer's appends survived, in its own order
    assert all(sorted(rounds) == list(range(ROUNDS)) for rounds in by_bench.values())
    assert len(by_bench) == WRITERS
