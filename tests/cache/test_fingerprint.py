"""Fingerprint stability and sensitivity.

The cache can only serve bit-identical results if the fingerprint is
(a) deterministic across independent builds of the same content and
(b) sensitive to every input the evaluation depends on.
"""

from repro.cache import (
    fingerprint_cdfg,
    fingerprint_content,
    fingerprint_delays,
    fingerprint_machine,
    fingerprint_registers,
    stable_digest,
)
from repro.afsm.extract import extract_controllers
from repro.channels.model import derive_channels
from repro.timing.delays import DelayModel
from repro.workloads import build_diffeq_cdfg, build_gcd_cdfg


class TestStability:
    def test_same_build_same_fingerprint(self):
        assert fingerprint_cdfg(build_diffeq_cdfg()) == fingerprint_cdfg(build_diffeq_cdfg())

    def test_copy_preserves_fingerprint(self, diffeq):
        assert fingerprint_cdfg(diffeq.copy()) == fingerprint_cdfg(diffeq)

    def test_content_fingerprint_is_deterministic(self):
        def build():
            cdfg = build_diffeq_cdfg()
            return fingerprint_content(cdfg, derive_channels(cdfg))

        assert build() == build()

    def test_machine_fingerprint_is_deterministic(self):
        def build():
            cdfg = build_gcd_cdfg()
            design = extract_controllers(cdfg, derive_channels(cdfg))
            fu, controller = next(iter(design.controllers.items()))
            return fu, fingerprint_machine(controller.machine)

        assert build() == build()

    def test_stable_digest_is_pure(self):
        assert stable_digest(("a", 1, 2.5)) == stable_digest(("a", 1, 2.5))
        assert stable_digest(("a",)) != stable_digest(("b",))


class TestSensitivity:
    def test_different_workloads_differ(self, diffeq, gcd):
        assert fingerprint_cdfg(diffeq) != fingerprint_cdfg(gcd)

    def test_parameter_change_invalidates(self):
        base = build_diffeq_cdfg()
        nudged = build_diffeq_cdfg({"x0": 99.0})
        assert fingerprint_cdfg(base) != fingerprint_cdfg(nudged)

    def test_delay_model_sensitivity(self):
        assert fingerprint_delays(None) != fingerprint_delays(DelayModel())
        assert fingerprint_delays(DelayModel()) == fingerprint_delays(DelayModel())
        tweaked = DelayModel(overrides={("MUL1", None): (5.0, 7.0)})
        assert fingerprint_delays(DelayModel()) != fingerprint_delays(tweaked)

    def test_register_fingerprint_order_insensitive(self):
        assert fingerprint_registers({"a": 1.0, "b": 2.0}) == fingerprint_registers(
            {"b": 2.0, "a": 1.0}
        )
        assert fingerprint_registers({"a": 1.0}) != fingerprint_registers({"a": 1.5})
        assert fingerprint_registers(None) != fingerprint_registers({})
