"""Lock sidecars are scratch: cleaned up at normal exit, never committed.

A stale ``BENCH_scaling.json.lock`` once sat in the repo root for
several PRs.  The contract now: ``file_lock`` registers an atexit
sweep that unlinks sidecars this process touched — unless another
process still holds the flock, in which case it is left alone.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.cache.store import _remove_stale_lock, file_lock

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestAtexitCleanup:
    def test_lock_sidecar_removed_at_normal_interpreter_exit(self, tmp_path):
        history = tmp_path / "hist.json"
        script = (
            "from repro.bench import record\n"
            f"record('lock-hygiene', 0.5, path=r'{history}')\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert history.exists()  # the data survived ...
        assert not history.with_name("hist.json.lock").exists()  # ... the lock did not

    def test_held_lock_is_left_alone(self, tmp_path):
        lock_path = tmp_path / "busy.lock"
        import fcntl

        holder = open(lock_path, "a+")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            _remove_stale_lock(str(lock_path))
            assert lock_path.exists()  # another holder: not ours to clean
        finally:
            holder.close()

    def test_unheld_lock_is_removed(self, tmp_path):
        lock_path = tmp_path / "stale.lock"
        lock_path.touch()
        _remove_stale_lock(str(lock_path))
        assert not lock_path.exists()

    def test_file_lock_still_serializes(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        with file_lock(lock_path):
            assert lock_path.exists()


class TestRepoHygiene:
    def test_no_lock_files_in_the_repo_root(self):
        root = Path(__file__).resolve().parents[2]
        assert not list(root.glob("*.lock"))

    def test_gitignore_covers_lock_files(self):
        root = Path(__file__).resolve().parents[2]
        assert "*.lock" in (root / ".gitignore").read_text().split()
