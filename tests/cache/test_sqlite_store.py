"""SQLite artifact store: concurrency, quarantine, JSON round-trips.

The contracts mirror ``test_store_concurrency.py``'s for the JSON
mirror, plus the row-granular ones only a database can offer:

- concurrent savers converge to the union without whole-file rewrites;
- a database file SQLite cannot open is quarantined (renamed aside,
  loud warning, run proceeds cold) — never a crash;
- a *row* whose record text is torn is deleted and counted, leaving
  every other record loadable;
- records round-trip bit-identically JSON -> SQLite -> JSON.
"""

import json
import multiprocessing
import sqlite3
import warnings

import pytest

from repro.cache.sqlstore import SqliteArtifactCache, connect_wal
from repro.cache.store import ArtifactCache

WRITERS = 4
RECORD = {"makespan": 4.25, "nested": {"pi": 3.141592653589793}, "flag": True}


class TestBasics:
    def test_put_save_load_round_trip(self, tmp_path):
        cache = SqliteArtifactCache(tmp_path)
        cache.put("k1", dict(RECORD))
        cache.save()
        fresh = SqliteArtifactCache(tmp_path)
        assert fresh.get("k1") == RECORD
        assert fresh.loaded_entries == 1

    def test_interface_matches_json_mirror(self, tmp_path):
        """Drop-in: the ArtifactCache surface works unchanged."""
        cache = SqliteArtifactCache(tmp_path)
        assert cache.get("missing") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert len(cache) == 1
        assert cache.hits >= 1 and cache.misses >= 1

    def test_merge_save_preserves_other_writers_rows(self, tmp_path):
        first = SqliteArtifactCache(tmp_path)
        first.put("mine", {"writer": 1})
        first.save()
        second = SqliteArtifactCache(tmp_path)  # loaded before first's save? no: after
        second.memory.clear()  # simulate a writer that never saw "mine"
        second.put("yours", {"writer": 2})
        second.save(merge=True)
        final = SqliteArtifactCache(tmp_path)
        assert set(final.memory) == {"mine", "yours"}

    def test_snapshot_save_compacts(self, tmp_path):
        cache = SqliteArtifactCache(tmp_path)
        cache.put("keep", {"v": 1})
        cache.save()
        other = SqliteArtifactCache(tmp_path)
        other.memory.clear()
        other.put("only", {"v": 2})
        other.save(merge=False)
        final = SqliteArtifactCache(tmp_path)
        assert set(final.memory) == {"only"}


class TestQuarantine:
    def test_unopenable_file_quarantined_run_proceeds_cold(self, tmp_path):
        store_path = tmp_path / "explore.sqlite3"
        store_path.write_text("definitely not a sqlite database, " * 20)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            cache = SqliteArtifactCache(tmp_path)
        assert len(cache) == 0
        assert list(tmp_path.glob("explore.sqlite3.corrupt-*"))

    def test_torn_row_dropped_and_counted_others_survive(self, tmp_path):
        cache = SqliteArtifactCache(tmp_path)
        cache.put("good", dict(RECORD))
        cache.put("doomed", {"v": 2})
        cache.save()
        conn = connect_wal(tmp_path / "explore.sqlite3")
        conn.execute(
            "UPDATE artifacts SET record = ? WHERE key = ?", ('{"torn', "doomed")
        )
        conn.close()
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            fresh = SqliteArtifactCache(tmp_path)
        assert fresh.get("good") == RECORD
        assert fresh.get("doomed") is None
        assert fresh.quarantined_rows == 1
        # the torn row was deleted on disk, so the next load is clean
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = SqliteArtifactCache(tmp_path)
        assert again.quarantined_rows == 0

    def test_version_mismatch_reads_cold_not_corrupt(self, tmp_path):
        cache = SqliteArtifactCache(tmp_path)
        cache.put("k", {"v": 1})
        cache.save()
        conn = connect_wal(tmp_path / "explore.sqlite3")
        conn.execute("UPDATE meta SET value = '999' WHERE name = 'version'")
        conn.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # cold, silent — not quarantined
            fresh = SqliteArtifactCache(tmp_path)
        assert len(fresh) == 0
        assert not list(tmp_path.glob("explore.sqlite3.corrupt-*"))


class TestJsonRoundTrip:
    def test_sqlite_to_json_to_sqlite_is_identity(self, tmp_path):
        cache = SqliteArtifactCache(tmp_path)
        cache.put("a", dict(RECORD))
        cache.put("b", {"floats": [0.1, 1e-17, 2.5]})
        cache.save()
        cache.export_json(filename="mirror.json")
        mirror = ArtifactCache(tmp_path, filename="mirror.json")
        assert mirror.memory == cache.memory
        rebuilt = SqliteArtifactCache.import_json(
            tmp_path, json_filename="mirror.json", filename="rebuilt.sqlite3"
        )
        # byte-identical records: both formats serialize with repr floats
        for key in cache.memory:
            assert json.dumps(rebuilt.get(key), sort_keys=True) == json.dumps(
                cache.get(key), sort_keys=True
            )

    def test_existing_json_mirror_migrates(self, tmp_path):
        legacy = ArtifactCache(tmp_path)
        legacy.put("old", {"from": "json", "value": 0.30000000000000004})
        legacy.save()
        migrated = SqliteArtifactCache.import_json(tmp_path)
        fresh = SqliteArtifactCache(tmp_path)
        assert fresh.get("old") == legacy.get("old")
        assert migrated.get("old") == legacy.get("old")


def _sql_union_writer(directory: str, index: int, barrier) -> None:
    cache = SqliteArtifactCache(directory)
    cache.put(f"own-{index}", {"writer": index})
    cache.put("shared", {"makespan": 4.25})
    barrier.wait()
    cache.save()


def _sql_churn_writer(directory: str, index: int, barrier) -> None:
    barrier.wait()
    for round_no in range(5):
        cache = SqliteArtifactCache(directory)
        cache.put(f"w{index}-r{round_no}", {"round": round_no})
        cache.save()


class TestConcurrentWriters:
    def _spawn(self, target, args_for):
        barrier = multiprocessing.Barrier(WRITERS)
        workers = [
            multiprocessing.Process(target=target, args=args_for(index, barrier))
            for index in range(WRITERS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

    def test_racing_saves_converge_to_the_union(self, tmp_path):
        self._spawn(_sql_union_writer, lambda i, b: (str(tmp_path), i, b))
        final = SqliteArtifactCache(str(tmp_path))
        expected = {f"own-{index}" for index in range(WRITERS)} | {"shared"}
        assert set(final.memory) == expected
        assert final.get("shared") == {"makespan": 4.25}

    def test_churning_writers_lose_nothing(self, tmp_path):
        """Row-granular upserts: unlike the JSON mirror's lock convoy,
        every record from every round must land."""
        self._spawn(_sql_churn_writer, lambda i, b: (str(tmp_path), i, b))
        final = SqliteArtifactCache(str(tmp_path))
        expected = {
            f"w{index}-r{round_no}"
            for index in range(WRITERS)
            for round_no in range(5)
        }
        assert set(final.memory) == expected

    def test_database_is_wal_mode(self, tmp_path):
        SqliteArtifactCache(tmp_path).save()
        conn = sqlite3.connect(str(tmp_path / "explore.sqlite3"))
        mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        conn.close()
        assert mode == "wal"
