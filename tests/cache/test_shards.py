"""Work-stealing shard runner: identity, resume, journal, crash recovery."""

import json

import pytest

from repro.cache.incremental import IncrementalExplorer
from repro.cache.journal import ResultJournal
from repro.cache.shards import ShardRunner, _assemble_record, explore_space
from repro.cache.space import ParameterSpace
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.resilience.injection import ConfigFaultInjector

SPACE_DOC = {
    "scenarios": [{"workload": "diffeq"}],
    "delays": [{"name": "nominal"}, {"name": "x1.5", "scale": 1.5}],
    "seeds": [9],
    "gt": [[], ["GT1"], ["GT3"], ["GT1", "GT3"]],
    "lt": [[], list(STANDARD_LOCAL_SEQUENCE)],
}  # 2 contexts x 8 points = 16


def make_space() -> ParameterSpace:
    return ParameterSpace.from_dict(SPACE_DOC)


def tiny_space() -> ParameterSpace:
    return ParameterSpace.from_dict(
        {
            "scenarios": [{"workload": "diffeq"}],
            "delays": [{"name": "nominal"}],
            "gt": [[], ["GT1"]],
            "lt": [[]],
        }
    )  # 1 context x 2 points


def canonical(documents) -> str:
    return json.dumps(documents, sort_keys=True)


@pytest.fixture(scope="module")
def baseline_docs():
    """The uninterrupted single-shard sweep every identity test pins to."""
    result = explore_space(make_space(), shards=1)
    assert result.complete
    return result.documents


# ----------------------------------------------------------------------
# identity: shards are a scheduling choice, not a semantic one
# ----------------------------------------------------------------------
def test_two_shards_bit_identical_to_one(baseline_docs):
    live_calls = []
    runner = ShardRunner(
        make_space(),
        shards=2,
        parallelism=2,
        live=lambda done, total, frontier, point: live_calls.append((done, total)),
    )
    result = runner.run()
    assert result.complete
    assert canonical(result.documents) == canonical(baseline_docs)
    assert result.stats["completed_points"] == 16
    assert result.stats["shards"] == 2

    # the live stream saw every point, monotonically
    assert [done for done, __ in live_calls] == list(range(1, 17))
    assert all(total == 16 for __, total in live_calls)

    # the streaming frontier agrees with the end-of-run sort-based one
    signature = lambda p: (p.objectives(), p.global_transforms, p.local_transforms)
    assert {signature(p) for p in runner.frontier.points()} == {
        signature(p) for p in result.pareto_points()
    }
    assert runner.frontier.best().objectives() == min(
        p.objectives() for p in result.pareto_points()
    )


def test_sharded_points_match_the_single_pool_engine(baseline_docs):
    """Point-for-point equality with a plain IncrementalExplorer."""
    space = make_space()
    context = next(space.contexts())  # the nominal-delay context
    explorer = IncrementalExplorer(
        context.cdfg,
        delays=context.delays,
        seed=context.seed,
        golden=context.golden,
        check_edges=True,
    )
    labels = context.labels()
    expected = []
    for gt in space.gt_subsets:
        for lt in space.lt_subsets:
            record = explorer.evaluate_prefix(gt, tuple(lt))
            point = _assemble_record(gt, tuple(lt), record, golden_checked=True)
            expected.append({**point.to_dict(), **labels})
    assert baseline_docs[: len(expected)] == expected


# ----------------------------------------------------------------------
# speed independence: the shared trie-edge memo
# ----------------------------------------------------------------------
def _context_explorer(context, **kwargs):
    return IncrementalExplorer(
        context.cdfg,
        delays=context.delays,
        seed=context.seed,
        golden=context.golden,
        check_edges=True,
        **kwargs,
    )


def test_uniform_scale_contexts_share_every_trie_edge():
    """A uniformly-scaled delay model replays the nominal context's edge
    records verbatim: transform decisions (GT3 included) compare *sums*
    of delays, so scaling every interval by one factor preserves each
    decision, oracle verdict and content fingerprint — the paper's
    speed-independence argument, which the worker-global edge memo in
    the shard runner leans on."""
    space = make_space()
    nominal, scaled = space.contexts()
    assert nominal.edge_scope == scaled.edge_scope == "uniform-scale"

    memo = {}
    warm = _context_explorer(nominal, edge_memo=memo, edge_scope=nominal.edge_scope)
    for gt in space.gt_subsets:
        warm.evaluate_prefix(gt, ())
    assert warm.edges_applied > 0 and memo

    peer = _context_explorer(scaled, edge_memo=memo, edge_scope=scaled.edge_scope)
    records = [peer.evaluate_prefix(gt, ()) for gt in space.gt_subsets]
    assert peer.edges_applied == 0  # every edge came from the memo

    # ...and the shortcut is invisible in the results: bit-identical to
    # a cold explorer that recomputes every edge under the scaled model
    cold = _context_explorer(scaled)
    assert records == [cold.evaluate_prefix(gt, ()) for gt in space.gt_subsets]
    assert cold.edges_applied > 0


def test_override_variants_do_not_share_scaled_edges():
    """Per-FU overrides break the uniform-scaling symmetry, so those
    contexts fall back to an exact-delay-fingerprint memo scope."""
    space = ParameterSpace.from_dict(
        {
            "scenarios": [{"workload": "diffeq"}],
            "delays": [
                {"name": "nominal"},
                {"name": "hot-mul", "overrides": [["MUL1", "*", [9.0, 13.0]]]},
            ],
            "gt": [[], ["GT1"]],
            "lt": [[]],
        }
    )
    nominal, hot = space.contexts()
    assert nominal.edge_scope == "uniform-scale"
    assert hot.edge_scope is None  # explorer defaults to the delay fp


# ----------------------------------------------------------------------
# partitioning + stealing (deterministic, no threads)
# ----------------------------------------------------------------------
def test_shards_clamp_to_available_parallelism():
    """Shards beyond hardware parallelism only duplicate cold worker memos,
    so the fleet is clamped; requested vs effective are both reported."""
    runner = ShardRunner(make_space(), shards=8, parallelism=2)
    assert runner.shards == 8
    assert runner.effective_shards == 2
    queues = runner._build_units(list(make_space().contexts()))
    assert len(queues) == 2
    result = ShardRunner(make_space(), shards=8, parallelism=1).run()
    assert result.stats["shards"] == 8
    assert result.stats["effective_shards"] == 1

    # auto-detection never produces an empty fleet
    assert ShardRunner(make_space(), shards=2).effective_shards >= 1


def test_units_are_shared_prefix_subtrees_with_scenario_affinity():
    space = make_space()
    runner = ShardRunner(space, shards=2, parallelism=2)
    contexts = list(space.contexts())
    queues = runner._build_units(contexts)
    # both contexts are delay variants of ONE scenario: they must share
    # shard 0 (and its worker memos); 3 first-pass subtrees per context
    # ("", "GT1", "GT3"), all under the unit size
    assert len(queues[0]) == 6
    assert not queues[1]  # gets its work by stealing
    for unit in queues[0]:
        assert unit.context.scenario_index == 0
        firsts = {gt[0] if gt else "" for gt, __ in unit.items}
        assert len(firsts) == 1  # one trie subtree per unit
        assert len(unit.keys) == len(unit.items)


def test_distinct_scenarios_spread_across_shards():
    space = ParameterSpace.from_dict(
        {
            "scenarios": [{"workload": "diffeq"}, {"random": 1}, {"random": 2}],
            "delays": [{"name": "nominal"}, {"name": "x2", "scale": 2.0}],
            "gt": [[], ["GT1"]],
            "lt": [[]],
        }
    )
    runner = ShardRunner(space, shards=2, parallelism=2)
    queues = runner._build_units(list(space.contexts()))
    owners = {
        shard: {unit.context.scenario_index for unit in queue}
        for shard, queue in enumerate(queues)
    }
    assert owners == {0: {0, 2}, 1: {1}}


def test_idle_shard_cold_steal_adopts_half_the_tail_context_run():
    space = make_space()
    runner = ShardRunner(space, shards=4, parallelism=4)
    queues = runner._build_units(list(space.contexts()))
    # the single scenario fills shard 0; shards 1-3 are idle
    assert not queues[1] and not queues[2] and not queues[3]
    # shard 0's tail holds the x1.5 context's 3-unit run; a cold thief
    # adopts half of it (2 units, rounded up) in canonical order
    run = [unit for unit in queues[0] if unit.context.index == 1]
    assert len(run) == 3
    stolen = runner._next_unit(2, queues)
    assert stolen is run[1]
    assert list(queues[2]) == [run[2]]
    assert runner._stolen == 2
    assert run[1].context.scenario_index in runner._seen[2]
    # the victim still serves its own queue from the head
    head = queues[0][0]
    assert runner._next_unit(0, queues) is head
    # draining everything eventually returns None
    for shard in (2, 3, 1, 0):
        while runner._next_unit(shard, queues) is not None:
            pass
    assert all(not queue for queue in queues)


def test_warm_steal_prefers_contexts_the_thief_has_seen():
    space = ParameterSpace.from_dict(
        {
            "scenarios": [{"workload": "diffeq"}, {"random": 1}, {"random": 2}],
            "delays": [{"name": "nominal"}, {"name": "x2", "scale": 2.0}],
            "gt": [[], ["GT1"]],
            "lt": [[]],
        }
    )
    runner = ShardRunner(space, shards=2, parallelism=2)
    contexts = list(space.contexts())
    queues = runner._build_units(contexts)
    # shard 1 owns scenario 1 only; pretend it already dispatched some
    # diffeq context — warmth is scenario-level (memos are content-
    # keyed), so EVERY diffeq variant is preferred over a cold adoption
    runner._seen[1].add(0)
    queues[1].clear()
    stolen = runner._next_unit(1, queues)
    # the tail of shard 0's queue is scenario 2, but a warm diffeq
    # unit wins — the tail-most one, from the x2 variant context
    assert stolen.context.scenario_index == 0
    assert stolen.context.variant.name == "x2"
    assert runner._stolen == 1


def test_single_context_on_many_shards_still_completes(baseline_docs):
    """End-to-end: shards without native work must steal to finish."""
    result = explore_space(make_space(), shards=3, parallelism=3)
    assert result.complete
    assert canonical(result.documents) == canonical(baseline_docs)


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------
def test_stop_and_resume_is_byte_identical(tmp_path, baseline_docs):
    run_dir = tmp_path / "run"
    partial = explore_space(
        make_space(), shards=2, parallelism=2, run_dir=run_dir, stop_after=5
    )
    assert not partial.complete
    assert partial.stats["stopped_early"]
    assert partial.stats["completed_points"] >= 5
    assert list(run_dir.glob("journal*.jsonl"))  # durable mid-run state

    resumed = explore_space(
        make_space(), shards=2, parallelism=2, run_dir=run_dir, resume=True
    )
    assert resumed.complete
    assert resumed.stats["resumed_points"] >= 5
    assert resumed.stats["resumed_points"] + resumed.stats["completed_points"] == 16
    assert canonical(resumed.documents) == canonical(baseline_docs)

    # clean completion compacted the journals into the mirror
    assert not list(run_dir.glob("journal*.jsonl"))
    assert (run_dir / "space.json").exists()

    # a second resume replays everything from the mirror, recomputing nothing
    replay = explore_space(
        make_space(), shards=2, parallelism=2, run_dir=run_dir, resume=True
    )
    assert replay.stats["resumed_points"] == 16
    assert replay.stats["completed_points"] == 0
    assert canonical(replay.documents) == canonical(baseline_docs)


def test_resume_tolerates_corrupted_journal_lines(tmp_path, baseline_docs):
    run_dir = tmp_path / "run"
    explore_space(
        make_space(), shards=2, parallelism=2, run_dir=run_dir, stop_after=4
    )
    victim = sorted(run_dir.glob("journal*.jsonl"))[0]
    with victim.open("a", encoding="utf-8") as handle:
        handle.write('{"key": "truncated-mid-cra')  # SIGKILL signature

    journal = ResultJournal(run_dir)
    journal.load()
    assert journal.skipped_lines == 1

    resumed = explore_space(
        make_space(), shards=2, parallelism=2, run_dir=run_dir, resume=True
    )
    assert resumed.complete
    assert canonical(resumed.documents) == canonical(baseline_docs)


def test_resume_reattempts_failed_points(tmp_path):
    """Failed records are journaled but never resumed — a resume must
    re-evaluate the crash, mirroring the cache-mirror contract."""
    run_dir = tmp_path / "run"
    injector = ConfigFaultInjector.for_configs([("GT1",)], mode="raise")
    broken = explore_space(
        tiny_space(), shards=1, run_dir=run_dir, fault_injector=injector
    )
    assert broken.complete
    failed = broken.failed_points()
    assert [p.global_transforms for p in failed] == [("GT1",)]
    assert "injected fault" in failed[0].error

    healed = explore_space(tiny_space(), shards=1, run_dir=run_dir, resume=True)
    assert healed.complete
    assert healed.stats["resumed_points"] == 1  # only the ok point carried over
    assert not healed.failed_points()


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def test_killed_pool_worker_rebuilds_and_reports(tmp_path):
    injector = ConfigFaultInjector.for_configs(
        [("GT1",)], mode="exit", once_marker=str(tmp_path / "crashed-once")
    )
    result = explore_space(tiny_space(), shards=1, fault_injector=injector)
    assert result.complete
    assert result.stats["broken_pools"] >= 1
    assert not result.stats.get("shard_errors")
    by_gt = {p.global_transforms: p for p in result.points}
    assert by_gt[()].status == "ok"
    # the post-crash retry degrades the injector to a plain raise
    assert by_gt[("GT1",)].status == "failed"
    assert "post-crash retry" in by_gt[("GT1",)].error


# ----------------------------------------------------------------------
# journal unit behaviour
# ----------------------------------------------------------------------
def test_journal_round_trip_filters_and_compacts(tmp_path):
    writer = ResultJournal(tmp_path)
    writer.append("k1", {"status": "ok", "x": 1})
    writer.append("k2", {"status": "failed", "error": "boom"})
    writer.close()
    shard_writer = ResultJournal(tmp_path, shard=3)
    shard_writer.append("k3", {"status": "ok", "x": 3})
    shard_writer.close()
    assert (tmp_path / "journal-3.jsonl").exists()

    with (tmp_path / "journal.jsonl").open("a", encoding="utf-8") as handle:
        handle.write("\n{garbled\n[]\n")  # blank, torn, wrong-shape

    journal = ResultJournal(tmp_path)
    records = journal.load()
    assert records == {"k1": {"status": "ok", "x": 1}, "k3": {"status": "ok", "x": 3}}
    assert journal.skipped_lines == 2  # blank lines are not corruption

    journal.compact()
    assert not list(tmp_path.glob("journal*.jsonl"))
    assert (tmp_path / "space.json").exists()
    assert ResultJournal(tmp_path).load() == records


def test_journal_load_on_missing_directory_is_empty(tmp_path):
    assert ResultJournal(tmp_path / "nowhere").load() == {}


# ----------------------------------------------------------------------
# scaling bench (small space; the perf numbers are for `repro bench`)
# ----------------------------------------------------------------------
def test_run_scaling_bench_verdicts():
    from repro.bench import run_scaling_bench

    result = run_scaling_bench(
        shards=2,
        workers=1,
        workloads=("diffeq",),
        random_scenarios=0,
        delay_scales=(1.0,),
        check_resume=False,
    )
    assert result["points"] == 64
    assert result["contexts"] == 1
    assert result["identical"] is True  # sharded == single-pool, bit for bit
    assert result["speedup"] > 0
    assert result["resume_speedup"] > 0
    assert "identical_resume" not in result  # drill skipped on request
