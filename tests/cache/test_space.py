"""Parameter-space axes, specs, and content-addressed keys."""

import json

import pytest

from repro.cache.space import (
    DelayVariant,
    ParameterSpace,
    Scenario,
    bench_space,
    default_gt_grid,
    default_lt_grid,
    random_cdfg,
    random_program,
)
from repro.errors import SpaceError
from repro.sim.seeding import NOMINAL
from repro.sim.token_sim import simulate_tokens


def small_space(**overrides):
    doc = {
        "scenarios": [{"workload": "diffeq"}],
        "delays": [{"name": "nominal"}, {"name": "x1.5", "scale": 1.5}],
        "seeds": [9],
        "gt": [[], ["GT1"]],
        "lt": [[]],
    }
    doc.update(overrides)
    return ParameterSpace.from_dict(doc)


# ----------------------------------------------------------------------
# random scenarios
# ----------------------------------------------------------------------
def test_random_program_is_deterministic():
    assert random_program(7) == random_program(7)
    assert random_program(7) != random_program(8)


def test_random_cdfg_builds_and_simulates():
    cdfg = random_cdfg(3)
    result = simulate_tokens(cdfg, seed=NOMINAL)
    assert "I" in result.registers


def test_random_scenarios_share_the_strategy_builder():
    # tests/strategies.py builds through the same function, so a
    # failing scenario replays as a fuzz case
    from tests.strategies import build_program

    program = random_program(5)
    a = build_program(program)
    b = random_cdfg(5)
    from repro.cache.fingerprint import fingerprint_cdfg

    # graphs are structurally identical (names differ: random vs random-5)
    assert len(list(a.nodes())) == len(list(b.nodes()))


# ----------------------------------------------------------------------
# delay variants
# ----------------------------------------------------------------------
def test_nominal_variant_builds_none():
    assert DelayVariant().build() is None


def test_scaled_variant_scales_every_interval():
    base_model = DelayVariant(name="x2", scale=2.0).build()
    from repro.timing.delays import DelayModel

    default = DelayModel()
    assert base_model.copy_delay == tuple(2 * x for x in default.copy_delay)
    for op, interval in default.operator_delays.items():
        assert base_model.operator_delays[op] == (interval[0] * 2, interval[1] * 2)


def test_override_variant_pins_pairs():
    variant = DelayVariant.from_dict(
        {"overrides": [["MUL1", "*", [9.0, 13.0]]]}
    )
    model = variant.build()
    assert model.overrides[("MUL1", "*")] == (9.0, 13.0)
    assert variant.name == "MUL1.*"


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def test_space_roundtrips_through_dict():
    space = small_space()
    again = ParameterSpace.from_dict(space.to_dict())
    assert again.to_dict() == space.to_dict()


def test_space_from_file(tmp_path):
    path = tmp_path / "space.json"
    path.write_text(json.dumps(small_space().to_dict()), encoding="utf-8")
    assert len(ParameterSpace.from_file(path)) == len(small_space())


def test_default_grids_match_the_historical_sweep():
    space = ParameterSpace.for_workload("diffeq")
    assert len(space.gt_subsets) == 32
    assert len(space.lt_subsets) == 2
    assert len(space) == 64
    assert space.gt_subsets == default_gt_grid()
    assert space.lt_subsets == default_lt_grid()


def test_random_scenarios_sugar():
    space = ParameterSpace.from_dict(
        {
            "scenarios": [],
            "random_scenarios": {"count": 3, "base_seed": 10},
            "gt": [[]],
            "lt": [[]],
        }
    )
    assert [s.seed for s in space.scenarios] == [10, 11, 12]


@pytest.mark.parametrize(
    "doc",
    [
        {"scenarios": []},
        {"scenarios": [{"workload": "diffeq"}], "schema": "bogus/v9"},
        {"scenarios": [{"mystery": 1}]},
        {"scenarios": [{"workload": "diffeq"}], "gt": [["NOT_A_PASS"]]},
        {"scenarios": [{"workload": "diffeq"}], "gt": []},
        {"scenarios": [{"workload": "diffeq"}], "delays": [{"scale": -1.0}]},
        {"scenarios": [{"workload": "diffeq"}], "delays": [{"overrides": [["FU"]]}]},
        {
            "scenarios": [{"workload": "diffeq"}],
            "delays": [{"name": "dup"}, {"name": "dup"}],
        },
    ],
)
def test_malformed_specs_raise_space_error(doc):
    with pytest.raises(SpaceError):
        ParameterSpace.from_dict(doc)


def test_unknown_workload_scenario_fails_at_build():
    scenario = Scenario.from_dict({"workload": "no-such-workload"})
    with pytest.raises(SpaceError):
        scenario.build()


def test_space_file_errors(tmp_path):
    with pytest.raises(SpaceError):
        ParameterSpace.from_file(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(SpaceError):
        ParameterSpace.from_file(bad)


def test_kernel_scenario_compiles():
    from pathlib import Path

    kernel = Path(__file__).resolve().parents[2] / "examples" / "kernels" / "accumulate.py"
    scenario = Scenario.from_dict({"kernel": str(kernel), "bounds": {"ALU": 2}})
    cdfg = scenario.build()
    assert simulate_tokens(cdfg, seed=NOMINAL).registers
    assert scenario.name == "accumulate"


# ----------------------------------------------------------------------
# contexts and keys
# ----------------------------------------------------------------------
def test_context_keys_are_content_addressed():
    space = small_space()
    keys = [ctx.key for ctx in space.contexts()]
    assert len(set(keys)) == len(keys)  # delay variant changes the key
    # same spec again: identical keys (pure content, no run identity)
    assert [ctx.key for ctx in small_space().contexts()] == keys


def test_point_keys_distinguish_grid_points():
    space = small_space()
    ctx = next(space.contexts())
    keys = {
        space.point_key(ctx, gt, tuple(lt))
        for gt in space.gt_subsets
        for lt in space.lt_subsets
    }
    assert len(keys) == space.points_per_context


def test_contexts_are_scenario_major_and_counted():
    space = ParameterSpace.from_dict(
        {
            "scenarios": [{"workload": "diffeq"}, {"random": 1}],
            "delays": [{"name": "nominal"}, {"name": "x2", "scale": 2.0}],
            "seeds": [9, 11],
            "gt": [[]],
            "lt": [[]],
        }
    )
    contexts = list(space.contexts())
    assert len(contexts) == space.context_count == 8
    assert [c.scenario_index for c in contexts] == [0] * 4 + [1] * 4
    assert [c.index for c in contexts] == list(range(8))


def test_bench_space_shape():
    space = bench_space()
    assert space.context_count == 16  # (1 workload + 3 random) x 4 scales
    assert len(space) == 1024
