"""Reusable Hypothesis strategies for the test suite.

Three families, shared by the property tests and the verify tests:

- :func:`programs` / :func:`build_program` — random structured CDFG
  programs (straight-line ops plus one loop on random unit bindings);
- :func:`workload_params` — random input vectors for each of the real
  workloads, drawn from the same terminating parameter spaces the
  conformance fuzzer uses;
- :func:`delay_overrides` / :func:`transform_subsets` /
  :func:`verify_cases` — random delay-model perturbations, random
  GT/LT subsets, and fully-pinned :class:`~repro.verify.VerifyCase`
  instances built from all of the above.
"""

from hypothesis import strategies as st

from repro.cache.space import (
    RANDOM_OPERATORS as OPERATORS,
    RANDOM_REGISTERS as REGISTERS,
    RANDOM_UNITS as UNITS,
    build_random_program,
)
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.transforms.scripts import STANDARD_SEQUENCE
from repro.verify import VerifyCase
from repro.verify.fuzz import _override_targets


@st.composite
def programs(draw):
    """(pre-ops, body-ops, iterations) with data-dependency-safe reads.

    The pools and the builder live in :mod:`repro.cache.space` (shared
    with the exploration ``random`` scenarios) so a failing scenario
    replays as a fuzz case and vice versa.
    """
    op_strategy = st.tuples(
        st.sampled_from(REGISTERS),
        st.sampled_from(REGISTERS),
        st.sampled_from(OPERATORS),
        st.sampled_from(REGISTERS),
        st.sampled_from(UNITS),
    )
    pre = draw(st.lists(op_strategy, min_size=0, max_size=3))
    body = draw(st.lists(op_strategy, min_size=1, max_size=5))
    iterations = draw(st.integers(min_value=0, max_value=4))
    return tuple(pre), tuple(body), iterations


def build_program(program):
    """Materialize a :func:`programs` draw as a well-formed CDFG."""
    return build_random_program(program)


#: per-workload strategies over provably-terminating input vectors —
#: kept in sync with ``repro.verify.fuzz.PARAM_SPACES``
_PARAM_STRATEGIES = {
    "diffeq": st.fixed_dictionaries(
        {
            "dx": st.sampled_from([0.125, 0.25, 0.5]),
            "a": st.sampled_from([0.5, 1.0]),
            "y0": st.integers(-16, 16).map(lambda n: n / 8.0),
            "u0": st.integers(-8, 8).map(lambda n: n / 8.0),
        }
    ),
    "gcd": st.fixed_dictionaries(
        {
            "a0": st.integers(min_value=1, max_value=119),
            "b0": st.integers(min_value=1, max_value=119),
        }
    ),
    "ewf": st.fixed_dictionaries(
        {
            "n": st.integers(min_value=1, max_value=8),
            "s0": st.integers(4, 16).map(lambda n: n / 8.0),
            "k1": st.sampled_from([0.25, 0.5, 0.75]),
            "k2": st.sampled_from([0.125, 0.25]),
            "decay": st.sampled_from([0.5, 0.75]),
        }
    ),
    "fir": st.fixed_dictionaries(
        {
            "taps": st.integers(min_value=2, max_value=5),
            "samples": st.integers(min_value=1, max_value=6),
            "x0": st.integers(4, 16).map(lambda n: n / 8.0),
            "decay": st.sampled_from([0.5, 0.8]),
        }
    ),
}


def workload_params(workload: str):
    """Strategy over random input vectors for ``workload``."""
    return _PARAM_STRATEGIES[workload]


def transform_subsets(sequence=STANDARD_SEQUENCE):
    """Random subsets of a transform sequence, in canonical order."""
    return st.sets(st.sampled_from(sequence)).map(
        lambda chosen: tuple(name for name in sequence if name in chosen)
    )


def delay_overrides(workload: str, max_size: int = 2):
    """Random operator-specific delay overrides for ``workload``.

    Only ``(fu, operator)`` pairs the workload actually executes are
    targeted, and never a whole unit — a unit-wide override also slows
    register latches, stepping outside the bundled-data timing
    assumption the local transforms rely on.
    """
    targets = _override_targets(workload)
    interval = st.tuples(
        st.integers(1, 8).map(lambda n: n / 2.0),
        st.integers(0, 16).map(lambda n: n / 2.0),
    ).map(lambda pair: (pair[0], pair[0] + pair[1]))
    return st.lists(
        st.tuples(st.sampled_from(targets), interval).map(
            lambda drawn: (drawn[0][0], drawn[0][1], drawn[1])
        ),
        max_size=max_size,
    ).map(tuple)


def fault_plans(workload: str, max_specs: int = 3, magnitude_max: float = 1.0, kinds=None):
    """Random delay-fault plans over pairs ``workload`` actually executes.

    ``kinds`` restricts the fault kinds (default: all three).  Note
    that magnitude 0 is only the identity for ``scale``/``jitter`` —
    ``stuck_slow`` pins the interval even at magnitude 0.
    """
    from repro.resilience.faults import FAULT_KINDS, FaultPlan, FaultSpec

    targets = _override_targets(workload)
    spec = st.tuples(
        st.sampled_from(tuple(kinds) if kinds is not None else FAULT_KINDS),
        st.sampled_from(targets),
        st.integers(0, int(magnitude_max * 16)),
    ).map(
        lambda drawn: FaultSpec(
            kind=drawn[0], fu=drawn[1][0], operator=drawn[1][1], magnitude=drawn[2] / 16.0
        )
    )
    return st.lists(spec, max_size=max_specs).map(
        lambda specs: FaultPlan(seed=0, specs=tuple(specs))
    )


@st.composite
def verify_cases(draw, workload: str):
    """Fully-pinned conformance cases for ``workload``."""
    return VerifyCase(
        workload=workload,
        params=draw(workload_params(workload)),
        gts=draw(transform_subsets(STANDARD_SEQUENCE)),
        lts=draw(transform_subsets(STANDARD_LOCAL_SEQUENCE)),
        delay_overrides=draw(delay_overrides(workload)),
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
    )


#: literal pool for frontend programs — positive, exactly representable
_FRONTEND_LITERALS = ("0.5", "1.0", "2.0", "3.0")
#: operators safe on any operand values (no division by zero)
_FRONTEND_OPERATORS = ("+", "-", "*")


@st.composite
def _frontend_assign(draw, names):
    """One subset assignment reading only already-defined names."""
    dest = draw(st.sampled_from(("u", "v", "w", "z")))
    operand = st.one_of(
        st.sampled_from(tuple(names)), st.sampled_from(_FRONTEND_LITERALS)
    )
    left = draw(operand)
    operator = draw(st.sampled_from(_FRONTEND_OPERATORS))
    right = draw(operand)
    names.add(dest)
    return f"{dest} = {left} {operator} {right}"


@st.composite
def frontend_programs(draw):
    """Random source text inside the :mod:`repro.frontend` subset.

    Every generated program terminates by construction: the only loops
    are counted (``i = 0.0 … while i < k: … i = i + 1.0`` with the
    counter written nowhere else), operators avoid ``/`` so no operand
    value can fault, and conditions compare a defined name to a
    literal.  Programs mix straight-line arithmetic, an optional
    if/else and an optional counted loop, so compile → schedule →
    emit → simulate sees control structure, not just DAGs.
    """
    names = {"a", "b"}
    lines = [
        "def fuzzed(a: float = "
        + draw(st.sampled_from(_FRONTEND_LITERALS))
        + ", b: float = "
        + draw(st.sampled_from(_FRONTEND_LITERALS))
        + "):"
    ]
    for __ in range(draw(st.integers(1, 3))):
        lines.append("    " + draw(_frontend_assign(names)))
    if draw(st.booleans()):
        cond_name = draw(st.sampled_from(tuple(names)))
        cond_lit = draw(st.sampled_from(_FRONTEND_LITERALS))
        lines.append(f"    if {cond_name} < {cond_lit}:")
        then_names = set(names)
        for __ in range(draw(st.integers(1, 2))):
            lines.append("        " + draw(_frontend_assign(then_names)))
        if draw(st.booleans()):
            lines.append("    else:")
            else_names = set(names)
            for __ in range(draw(st.integers(1, 2))):
                lines.append("        " + draw(_frontend_assign(else_names)))
        # names written only inside a branch may be undefined on the
        # other path; keep the defined-name set to the pre-branch one
    if draw(st.booleans()):
        trips = draw(st.sampled_from(("1.0", "2.0", "3.0")))
        lines.append("    i = 0.0")
        lines.append(f"    while i < {trips}:")
        for __ in range(draw(st.integers(1, 2))):
            body_names = set(names) | {"i"}
            lines.append("        " + draw(_frontend_assign(body_names)))
        lines.append("        i = i + 1.0")
    bounds = {
        "ALU": draw(st.integers(1, 2)),
        "MUL": draw(st.integers(1, 2)),
    }
    return "\n".join(lines) + "\n", bounds
