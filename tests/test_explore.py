"""Design-space exploration module."""

import pytest

from repro.explore import (
    DesignPoint,
    ExplorationResult,
    evaluate_point,
    explore_design_space,
    failed_point,
)
from repro.workloads import build_diffeq_cdfg, diffeq_reference


@pytest.fixture(scope="module")
def sweep(diffeq):
    # a focused sweep to keep test time bounded
    return explore_design_space(
        diffeq,
        global_subsets=[(), ("GT1", "GT2"), ("GT1", "GT2", "GT3", "GT4", "GT5")],
        local_subsets=[(), ("LT4", "LT2", "LT1", "LT5")],
        reference=diffeq_reference(),
    )


class TestEvaluatePoint:
    def test_full_script_point(self, diffeq):
        point = evaluate_point(
            diffeq,
            ("GT1", "GT2", "GT3", "GT4", "GT5"),
            ("LT4", "LT2", "LT1", "LT3", "LT5"),
            reference=diffeq_reference(),
        )
        assert point.channels == 5
        assert point.makespan > 0

    def test_reference_mismatch_raises(self, diffeq):
        with pytest.raises(AssertionError):
            evaluate_point(diffeq, (), (), reference={"X": -123.0})


class TestSweep:
    def test_all_points_evaluated(self, sweep):
        assert len(sweep.points) == 6

    def test_pareto_frontier_nonempty(self, sweep):
        frontier = sweep.pareto_points()
        assert frontier
        for point in frontier:
            assert not any(other.dominates(point) for other in sweep.points)

    def test_full_script_on_channel_frontier(self, sweep):
        best = sweep.best("channels")
        assert best.channels == 5

    def test_best_makespan_has_local_transforms(self, sweep):
        best = sweep.best("makespan")
        assert best.local_transforms  # LTs always help latency here

    def test_unknown_objective(self, sweep):
        with pytest.raises(ValueError):
            sweep.best("beauty")


class TestParallelSweep:
    def test_parallel_matches_serial(self, diffeq):
        """The process-pool path must return the same points (and hence
        the same Pareto frontier) as the serial path."""
        subsets = dict(
            global_subsets=[(), ("GT1", "GT2"), ("GT1", "GT2", "GT3", "GT4", "GT5")],
            local_subsets=[(), ("LT4", "LT2", "LT1", "LT3", "LT5")],
            reference=diffeq_reference(),
        )
        serial = explore_design_space(diffeq, **subsets)
        parallel = explore_design_space(diffeq, workers=2, **subsets)
        assert parallel.points == serial.points
        assert sorted(p.label for p in parallel.pareto_points()) == sorted(
            p.label for p in serial.pareto_points()
        )

    def test_workers_one_is_serial(self, diffeq):
        result = explore_design_space(
            diffeq, global_subsets=[()], local_subsets=[()], workers=1
        )
        assert len(result.points) == 1


class TestConformanceStamp:
    def test_sweep_points_are_stamped(self, sweep):
        for point in sweep.points:
            assert point.conformant
            assert point.conformance == "conformant"

    def test_verify_false_leaves_points_unchecked(self, diffeq):
        result = explore_design_space(
            diffeq, global_subsets=[()], local_subsets=[()], verify=False
        )
        assert result.points[0].conformance == "unchecked"
        assert result.points[0].conformant  # unchecked is not a failure

    def test_wrong_golden_marks_point_nonconformant(self, diffeq):
        point = evaluate_point(diffeq, (), (), golden={"x": -1e9})
        assert not point.conformant
        assert point.conformance.startswith("failed: register x")

    def test_matching_golden_marks_point_conformant(self, diffeq):
        point = evaluate_point(diffeq, ("GT1",), (), golden=diffeq_reference())
        assert point.conformant
        assert point.conformance == "conformant"


class TestBestFrontierAgreement:
    """``best()`` must return a frontier point, whatever the mix.

    Regression: with ties on the chosen objective, a plain ``min`` by
    that objective alone can return a point *dominated* by another tie
    member (arrival order decides), so ``best('channels')`` would name
    a design ``pareto_points()`` rejects.  Ties are now broken by the
    full objective vector.
    """

    def mixed(self):
        return ExplorationResult(
            points=[
                # ties best() on channels with its own dominator below
                DesignPoint(("GT1",), (), 2, 50, 55, 100.0),
                DesignPoint(("GT2",), (), 2, 30, 33, 80.0),
                DesignPoint(("GT3",), (), 3, 20, 22, 60.0),
                # zeroed failed point: would win every objective if the
                # status filter dropped out of either method
                failed_point(("GT4",), (), "injected"),
            ]
        )

    def test_best_is_on_the_frontier_for_every_objective(self):
        result = self.mixed()
        frontier = {id(point) for point in result.pareto_points()}
        for objective in ("channels", "states", "makespan"):
            assert id(result.best(objective)) in frontier

    def test_tie_on_objective_resolves_to_the_dominator(self):
        assert self.mixed().best("channels").global_transforms == ("GT2",)

    def test_failed_points_excluded_from_both(self):
        result = self.mixed()
        assert all(p.status == "ok" for p in result.pareto_points())
        assert result.best("makespan").status == "ok"

    def test_all_failed_raises(self):
        result = ExplorationResult(points=[failed_point((), (), "boom")])
        assert result.pareto_points() == []
        with pytest.raises(ValueError):
            result.best("channels")


class TestDominance:
    def test_dominates(self):
        a = DesignPoint((), (), 5, 50, 55, 100.0)
        b = DesignPoint((), (), 6, 60, 66, 120.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_incomparable(self):
        a = DesignPoint((), (), 5, 80, 88, 100.0)
        b = DesignPoint((), (), 6, 50, 55, 100.0)
        assert not a.dominates(b)
        assert not b.dominates(a)
