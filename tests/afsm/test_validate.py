"""Machine well-formedness checks."""

import pytest

from repro.afsm import BurstModeMachine, Edge, InputBurst, OutputBurst, Signal, SignalKind
from repro.afsm.validate import check_machine, collect_problems, signal_levels
from repro.errors import BurstModeError


def _machine():
    machine = BurstModeMachine("test")
    machine.declare_signal(Signal("a", SignalKind.GLOBAL_READY, is_input=True))
    machine.declare_signal(Signal("b", SignalKind.GLOBAL_READY, is_input=True))
    machine.declare_signal(Signal("z", SignalKind.GLOBAL_READY, is_input=False))
    return machine


class TestPolarity:
    def test_clean_rtz_cycle(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst((Edge("z", True),)))
        machine.add_transition(s1, "s0", InputBurst((Edge("a", False),)), OutputBurst((Edge("z", False),)))
        check_machine(machine)
        levels = signal_levels(machine)
        assert levels["s0"]["a"] == 0
        assert levels[s1]["a"] == 1

    def test_double_rise_detected(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst(()))
        machine.add_transition(s1, s2, InputBurst((Edge("a", True),)), OutputBurst(()))
        problems = collect_problems(machine)
        assert any("fires from level" in p for p in problems)

    def test_output_double_drive_detected(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst((Edge("z", True),)))
        machine.add_transition(s1, s2, InputBurst((Edge("b", True),)), OutputBurst((Edge("z", True),)))
        problems = collect_problems(machine)
        assert any("driven from level" in p for p in problems)

    def test_ddc_weakens_level(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True, ddc=True),)), OutputBurst(()))
        # after a ddc the level is unknown: a compulsory rise is allowed
        machine.add_transition(s1, s2, InputBurst((Edge("a", True),)), OutputBurst(()))
        check_machine(machine)

    def test_initial_level_respected(self):
        machine = BurstModeMachine("init")
        machine.declare_signal(
            Signal("w", SignalKind.GLOBAL_READY, is_input=False, initial_level=1)
        )
        machine.declare_signal(Signal("go", SignalKind.GLOBAL_READY, is_input=True))
        s1 = machine.fresh_state()
        # falling first is fine for a wire that powers up high
        machine.add_transition("s0", s1, InputBurst((Edge("go", True),)), OutputBurst((Edge("w", False),)))
        check_machine(machine)


class TestDiscipline:
    def test_output_in_input_burst(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("z", True),)), OutputBurst(()))
        problems = collect_problems(machine)
        assert any("input burst" in p for p in problems)

    def test_input_driven(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst((Edge("b", True),)))
        problems = collect_problems(machine)
        assert any("driven in output burst" in p for p in problems)

    def test_subset_bursts_not_distinguishable(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst(()))
        machine.add_transition(
            "s0", s2, InputBurst((Edge("a", True), Edge("b", True))), OutputBurst(())
        )
        problems = collect_problems(machine)
        assert any("not distinguishable" in p for p in problems)

    def test_conditionals_distinguish(self):
        machine = _machine()
        machine.declare_signal(Signal("cond_D", SignalKind.CONDITIONAL, is_input=True, action=("cond", "D")))
        from repro.afsm.burst import Cond

        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),), (Cond("cond_D", True),)), OutputBurst(()))
        machine.add_transition("s0", s2, InputBurst((Edge("a", True),), (Cond("cond_D", False),)), OutputBurst(()))
        check_machine(machine)

    def test_unreachable_state_flagged(self):
        machine = _machine()
        machine.add_state("island")
        problems = collect_problems(machine)
        assert any("unreachable" in p for p in problems)


class TestErrorPaths:
    def test_signal_levels_raises_on_polarity_conflict(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst(()))
        machine.add_transition(s1, s2, InputBurst((Edge("a", True),)), OutputBurst(()))
        with pytest.raises(BurstModeError, match="fires from level"):
            signal_levels(machine)

    def test_check_machine_raise_prefixes_machine_name(self):
        machine = _machine()
        machine.add_state("island")
        with pytest.raises(BurstModeError, match=r"^test: .*unreachable"):
            check_machine(machine)

    def test_check_machine_joins_all_problems(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_state("island")
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst((Edge("b", True),)))
        with pytest.raises(BurstModeError) as excinfo:
            check_machine(machine)
        message = str(excinfo.value)
        assert "unreachable" in message
        assert "driven in output burst" in message
        assert "; " in message

    def test_output_sampled_as_conditional(self):
        from repro.afsm.burst import Cond

        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition(
            "s0", s1,
            InputBurst((Edge("a", True),), (Cond("z", True),)),
            OutputBurst(()),
        )
        problems = collect_problems(machine)
        assert any("sampled as conditional" in p for p in problems)

    def test_allow_polarity_conflicts_suppresses_only_polarity(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_state("island")
        machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst(()))
        machine.add_transition(s1, s2, InputBurst((Edge("a", True),)), OutputBurst(()))
        strict = collect_problems(machine)
        relaxed = collect_problems(machine, allow_polarity_conflicts=True)
        assert any("fires from level" in p for p in strict)
        assert not any("fires from level" in p for p in relaxed)
        # non-polarity problems are still reported
        assert any("unreachable" in p for p in relaxed)
        with pytest.raises(BurstModeError):
            check_machine(machine)
        with pytest.raises(BurstModeError, match="unreachable"):
            check_machine(machine, allow_polarity_conflicts=True)

    def test_reconvergent_paths_weaken_level_to_unknown(self):
        """Two paths that reach the same state with different levels
        leave the wire's level unknown there — a later compulsory edge
        of either polarity is then allowed, not a conflict."""
        machine = _machine()
        up = machine.fresh_state()
        join = machine.fresh_state()
        done = machine.fresh_state()
        machine.add_transition("s0", up, InputBurst((Edge("a", True),)), OutputBurst((Edge("z", True),)))
        machine.add_transition(up, join, InputBurst((Edge("b", True),)), OutputBurst(()))
        machine.add_transition("s0", join, InputBurst((Edge("b", True),)), OutputBurst(()))
        # b is high on both paths into join, so leaving on b- is clean
        machine.add_transition(join, done, InputBurst((Edge("b", False),)), OutputBurst(()))
        levels = signal_levels(machine)
        assert levels[join]["z"] is None
        assert levels[join]["a"] is None
        assert levels[join]["b"] == 1


class TestExtractedMachines:
    def test_all_diffeq_levels_clean(self, diffeq):
        from repro.afsm import extract_controllers
        from repro.channels import derive_channels
        from repro.local_transforms import optimize_local
        from repro.transforms import optimize_global

        unopt = extract_controllers(diffeq, derive_channels(diffeq))
        optimized = optimize_global(diffeq)
        gt = extract_controllers(optimized.cdfg, optimized.plan)
        lt = optimize_local(gt).design
        for design in (unopt, gt, lt):
            for controller in design.controllers.values():
                check_machine(controller.machine)
