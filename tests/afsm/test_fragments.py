"""Fragment expansion in isolation."""

import pytest

from repro.afsm.burst import Edge
from repro.afsm.fragments import FragmentPlan, GlobalEdge, expand_operation
from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import Signal, SignalKind
from repro.cdfg import Node, NodeKind
from repro.rtl import parse_statement


def _machine():
    machine = BurstModeMachine("frag")
    for wire in ("req_in", "done_out", "extra_out"):
        machine.declare_signal(
            Signal(wire, SignalKind.GLOBAL_READY, is_input=(wire == "req_in"))
        )
    return machine


def _node(text="A := B + C", fu="ALU"):
    statements = tuple(parse_statement(part) for part in text.split("; "))
    return Node(text, NodeKind.OPERATION, fu=fu, statements=statements)


class TestExpansion:
    def test_six_micro_operations(self):
        machine = _machine()
        plan = FragmentPlan(
            node=_node(),
            waits=[GlobalEdge("req_in", True)],
            dones=[GlobalEdge("done_out", True)],
        )
        end = expand_operation(machine, machine.initial_state, plan)
        micros = [t.tags["micro"] for t in sorted(machine.transitions(), key=lambda t: t.uid)]
        assert micros == ["mux", "op", "dstmux", "write", "reset", "done"]
        assert end in machine.states()

    def test_copy_statement_skips_fu(self):
        machine = _machine()
        plan = FragmentPlan(node=_node("X1 := X"), waits=[GlobalEdge("req_in", True)])
        expand_operation(machine, machine.initial_state, plan)
        names = {s.name for s in machine.signals()}
        assert not any(name.startswith("go_") for name in names)
        assert "reg_X1_sel_X_req" in names

    def test_merged_statements_share_fragment(self):
        machine = _machine()
        plan = FragmentPlan(
            node=_node("Y := Y + M2; X1 := X"), waits=[GlobalEdge("req_in", True)]
        )
        expand_operation(machine, machine.initial_state, plan)
        write = next(t for t in machine.transitions() if t.tags["micro"] == "write")
        latched = {e.signal for e in write.output_burst.edges}
        assert latched == {"reg_Y_latch_req", "reg_X1_latch_req"}

    def test_sequential_waits(self):
        machine = _machine()
        machine.declare_signal(Signal("req2", SignalKind.GLOBAL_READY, is_input=True))
        plan = FragmentPlan(
            node=_node(),
            waits=[GlobalEdge("req_in", True), GlobalEdge("req2", False)],
        )
        expand_operation(machine, machine.initial_state, plan)
        waits = [t for t in machine.transitions() if t.tags["micro"] in ("wait", "mux")]
        assert len(waits) == 2
        assert len(waits[0].input_burst.edges) == 1

    def test_literal_operand_const_mux(self):
        machine = _machine()
        plan = FragmentPlan(node=_node("X := X + 1"), waits=[GlobalEdge("req_in", True)])
        expand_operation(machine, machine.initial_state, plan)
        names = {s.name for s in machine.signals()}
        assert "mux1_const_1_req" in names

    def test_reset_edges_ride_first_output(self):
        machine = _machine()
        plan = FragmentPlan(
            node=_node(),
            waits=[GlobalEdge("req_in", True)],
            emit_resets=[GlobalEdge("extra_out", False)],
        )
        expand_operation(machine, machine.initial_state, plan)
        first = next(t for t in machine.transitions() if t.tags["micro"] == "mux")
        assert Edge("extra_out", False) in first.output_burst.edges

    def test_pending_outputs_attach(self):
        machine = _machine()
        plan = FragmentPlan(node=_node(), waits=[GlobalEdge("req_in", True)])
        pending = [Edge("extra_out", True)]
        expand_operation(machine, machine.initial_state, plan, pending_outputs=pending)
        first = next(t for t in machine.transitions() if t.tags["micro"] == "mux")
        assert Edge("extra_out", True) in first.output_burst.edges
