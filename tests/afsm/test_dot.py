"""Burst-mode machine DOT export."""

from repro import synthesize
from repro.afsm.dot import machine_to_dot, write_machine_dot
from repro.workloads import build_diffeq_cdfg


class TestMachineDot:
    def test_contains_all_states(self):
        design = synthesize(build_diffeq_cdfg())
        machine = design.controllers["MUL2"].machine
        text = machine_to_dot(machine, title="MUL2")
        for state in machine.states():
            assert state in text
        assert "doublecircle" in text
        assert "MUL2" in text

    def test_burst_notation(self):
        design = synthesize(build_diffeq_cdfg())
        machine = design.controllers["ALU2"].machine
        text = machine_to_dot(machine)
        assert "<cond_C+>" in text  # XBM conditional
        assert " / " in text

    def test_micro_tags_optional(self):
        design = synthesize(build_diffeq_cdfg())
        machine = design.controllers["MUL2"].machine
        assert "[mux]" not in machine_to_dot(machine)
        assert "[" in machine_to_dot(machine, show_micro_tags=True)

    def test_write(self, tmp_path):
        design = synthesize(build_diffeq_cdfg())
        path = tmp_path / "mul2.dot"
        write_machine_dot(design.controllers["MUL2"].machine, str(path))
        assert path.read_text().startswith("digraph")
