"""Burst-mode machine container and rewrite helpers."""

import pytest

from repro.afsm import BurstModeMachine, Edge, InputBurst, OutputBurst, Signal, SignalKind
from repro.errors import BurstModeError


def _machine():
    machine = BurstModeMachine("test")
    machine.declare_signal(Signal("req", SignalKind.GLOBAL_READY, is_input=True))
    machine.declare_signal(Signal("x_req", SignalKind.LOCAL_REQ, is_input=False, partner="x_ack"))
    machine.declare_signal(Signal("x_ack", SignalKind.LOCAL_ACK, is_input=True, partner="x_req"))
    machine.declare_signal(Signal("done", SignalKind.GLOBAL_READY, is_input=False))
    return machine


class TestStructure:
    def test_states_and_transitions(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("req", True),)), OutputBurst((Edge("x_req", True),))
        )
        assert machine.state_count == 2
        assert machine.transition_count == 1

    def test_unknown_state_rejected(self):
        machine = _machine()
        with pytest.raises(BurstModeError):
            machine.add_transition("s0", "nope", InputBurst(()), OutputBurst(()))

    def test_duplicate_state_rejected(self):
        machine = _machine()
        machine.add_state("sX")
        with pytest.raises(BurstModeError):
            machine.add_state("sX")

    def test_inconsistent_signal_redeclaration(self):
        machine = _machine()
        with pytest.raises(BurstModeError):
            machine.declare_signal(Signal("req", SignalKind.GLOBAL_READY, is_input=False))

    def test_remove_state_guards(self):
        machine = _machine()
        s1 = machine.fresh_state()
        transition = machine.add_transition("s0", s1, InputBurst((Edge("req", True),)), OutputBurst(()))
        with pytest.raises(BurstModeError):
            machine.remove_state(s1)
        machine.remove_transition(transition.uid)
        machine.remove_state(s1)
        with pytest.raises(BurstModeError):
            machine.remove_state("s0")  # initial state


class TestFolding:
    def test_empty_input_transition_folds(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("req", True),)), OutputBurst((Edge("x_req", True),))
        )
        machine.add_transition(
            s1, s2, InputBurst(()), OutputBurst((Edge("done", True),))
        )
        removed = machine.fold_trivial_states()
        assert removed == 1
        assert machine.state_count == 2
        merged = machine.transitions()[0]
        assert {e.signal for e in merged.output_burst.edges} == {"x_req", "done"}

    def test_fold_blocked_by_shared_wire(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("req", True),)), OutputBurst((Edge("x_req", True),))
        )
        machine.add_transition(
            s1, s2, InputBurst(()), OutputBurst((Edge("x_req", False),))
        )
        assert machine.fold_trivial_states() == 0  # x_req+ and x_req- must not merge

    def test_fold_carries_ddc(self):
        machine = _machine()
        s1 = machine.fresh_state()
        s2 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("req", True),)), OutputBurst(())
        )
        machine.add_transition(
            s1, s2, InputBurst((Edge("done", True, ddc=True),)), OutputBurst(())
        )
        # hmm: "done" is an output here; use a dedicated input for ddc
        machine.declare_signal(Signal("extra", SignalKind.GLOBAL_READY, is_input=True))
        t = machine.transitions_from(s1)[0]
        t.input_burst = InputBurst((Edge("extra", True, ddc=True),))
        machine.fold_trivial_states()
        merged = machine.transitions()[0]
        assert any(e.ddc and e.signal == "extra" for e in merged.input_burst.edges)

    def test_prune_unreachable(self):
        machine = _machine()
        s1 = machine.fresh_state()
        orphan = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("req", True),)), OutputBurst(()))
        machine.add_transition(orphan, s1, InputBurst((Edge("req", False),)), OutputBurst(()))
        removed = machine.prune_unreachable()
        assert removed == 1
        assert orphan not in machine.states()


class TestSignalRewrites:
    def test_rename_signal(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("req", True),)), OutputBurst((Edge("x_req", True),))
        )
        merged = Signal("shared", SignalKind.LOCAL_REQ, is_input=False)
        machine.rename_signal("x_req", merged)
        assert "x_req" not in {s.name for s in machine.signals()}
        assert machine.transitions()[0].output_burst.edges[0].signal == "shared"

    def test_drop_used_signal_rejected(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition(
            "s0", s1, InputBurst((Edge("req", True),)), OutputBurst(())
        )
        with pytest.raises(BurstModeError):
            machine.drop_signal("req")

    def test_copy_is_independent(self):
        machine = _machine()
        s1 = machine.fresh_state()
        machine.add_transition("s0", s1, InputBurst((Edge("req", True),)), OutputBurst(()))
        clone = machine.copy()
        clone.transitions()[0].dst = "s0"
        assert machine.transitions()[0].dst == s1
