"""Burst containers and edges."""

from repro.afsm import Cond, Edge, InputBurst, OutputBurst


class TestEdge:
    def test_direction_string(self):
        assert str(Edge("x", True)) == "x+"
        assert str(Edge("x", False)) == "x-"
        assert str(Edge("x", True, ddc=True)) == "x+*"

    def test_inverted(self):
        assert Edge("x", True).inverted() == Edge("x", False)

    def test_ddc_conversions(self):
        edge = Edge("x", True, ddc=True)
        assert edge.compulsory() == Edge("x", True)
        assert Edge("x", True).as_ddc() == edge


class TestInputBurst:
    def test_compulsory_filter(self):
        burst = InputBurst((Edge("a", True), Edge("b", False, ddc=True)))
        assert [e.signal for e in burst.compulsory_edges] == ["a"]

    def test_is_empty_semantics(self):
        assert InputBurst(()).is_empty
        assert InputBurst((Edge("a", True, ddc=True),)).is_empty  # ddc only
        assert not InputBurst((Edge("a", True),)).is_empty
        assert not InputBurst((), (Cond("c", True),)).is_empty

    def test_signals(self):
        burst = InputBurst((Edge("a", True),), (Cond("c", False),))
        assert burst.signals() == frozenset({"a", "c"})

    def test_without_signal(self):
        burst = InputBurst((Edge("a", True), Edge("b", True)))
        assert burst.without_signal("a").signals() == frozenset({"b"})

    def test_str(self):
        burst = InputBurst((Edge("a", True),), (Cond("c", True),))
        assert str(burst) == "{<c+>, a+}"


class TestOutputBurst:
    def test_adding_and_removing(self):
        burst = OutputBurst((Edge("z", True),)).adding(Edge("w", False))
        assert burst.signals() == frozenset({"z", "w"})
        assert burst.without_signal("z").signals() == frozenset({"w"})

    def test_empty(self):
        assert OutputBurst(()).is_empty
