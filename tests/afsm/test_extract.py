"""Controller extraction: structure, phases, and Figure 11 anatomy."""

import pytest

from repro.afsm import extract_controllers
from repro.afsm.extract import assign_phases
from repro.afsm.signals import SignalKind
from repro.channels import derive_channels
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg
from repro.workloads.diffeq import DIFFEQ_FUS, N_A, N_M1A, N_M1B, N_U


@pytest.fixture(scope="module")
def gt_design():
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    return extract_controllers(optimized.cdfg, optimized.plan)


@pytest.fixture(scope="module")
def unopt_design():
    cdfg = build_diffeq_cdfg()
    return extract_controllers(cdfg, derive_channels(cdfg))


class TestDesignShape:
    def test_one_controller_per_unit(self, gt_design):
        assert set(gt_design.controllers) == set(DIFFEQ_FUS)

    def test_controllers_wired_to_their_channels(self, gt_design):
        for fu, controller in gt_design.controllers.items():
            for wire in controller.input_wires:
                channel = gt_design.plan.by_name(wire)
                assert fu in channel.dst_fus
            for wire in controller.output_wires:
                channel = gt_design.plan.by_name(wire)
                assert channel.src_fu == fu

    def test_optimization_shrinks_controllers(self, unopt_design, gt_design):
        unopt_total = sum(c.state_count for c in unopt_design.controllers.values())
        gt_total = sum(c.state_count for c in gt_design.controllers.values())
        assert gt_total < unopt_total

    def test_summary_readable(self, gt_design):
        text = gt_design.summary()
        for fu in DIFFEQ_FUS:
            assert fu in text


class TestFragmentAnatomy:
    """The six micro-operations of Figure 11, on ALU1's A := Y + M1."""

    def _fragment(self, design, node):
        machine = design.controllers["ALU1"].machine
        return [t for t in machine.transitions() if t.tags.get("node") == node]

    def test_micro_operation_sequence(self, unopt_design):
        fragment = self._fragment(unopt_design, N_A)
        micros = [t.tags["micro"] for t in fragment]
        for required in ("mux", "op", "dstmux", "write", "reset", "done"):
            assert required in micros, micros

    def test_mux_selects_operands(self, unopt_design):
        fragment = self._fragment(unopt_design, N_A)
        mux = next(t for t in fragment if t.tags["micro"] == "mux")
        signals = {e.signal for e in mux.output_burst.edges}
        assert "mux0_Y_req+"[:-1] in signals  # Y operand
        assert "mux1_M1_req" in signals  # M1 operand

    def test_operation_selected_and_started(self, unopt_design):
        fragment = self._fragment(unopt_design, N_A)
        op = next(t for t in fragment if t.tags["micro"] == "op")
        assert any(e.signal == "go_add_req" and e.rising for e in op.output_burst.edges)

    def test_reset_phase_returns_to_zero(self, unopt_design):
        fragment = self._fragment(unopt_design, N_A)
        reset = next(t for t in fragment if t.tags["micro"] == "reset")
        assert reset.output_burst.edges
        assert all(not e.rising for e in reset.output_burst.edges)

    def test_merged_node_single_fragment(self, gt_design):
        """GT4's merged node expands into ONE fragment writing both
        registers in parallel."""
        machine = gt_design.controllers["ALU2"].machine
        merged = [
            t for t in machine.transitions()
            if t.tags.get("node") == "Y := Y + M2; X1 := X"
        ]
        write_signals = set()
        for t in merged:
            for e in t.output_burst.edges:
                if "latch" in e.signal and e.rising:
                    write_signals.add(e.signal)
        assert "reg_Y_latch_req" in write_signals
        assert "reg_X1_latch_req" in write_signals


class TestPhases:
    def test_two_events_share_the_mul1_wire(self, gt_design):
        """The MUL1 -> ALU1 channel carries M1A's and M1B's dones as
        opposite phases (the paper's M1A+/M1A- pattern)."""
        cdfg = gt_design.cdfg
        phases = gt_design.phases
        channel = gt_design.plan.channel_of((N_M1A, N_A))
        assert channel is gt_design.plan.channel_of((N_M1B, N_U))
        first = phases.event_for(channel.name, N_M1A)
        second = phases.event_for(channel.name, N_M1B)
        assert first.rising != second.rising

    def test_backward_channels_pre_enabled(self, gt_design):
        assert gt_design.phases.init_events, "U-done channel must be pre-enabled"
        wires = {wire for wire, __ in gt_design.phases.init_events}
        channel = gt_design.plan.channel_of((N_U, N_M1A))
        assert channel.wire_name() in wires

    def test_every_cross_fu_arc_has_an_event(self, gt_design):
        cdfg = gt_design.cdfg
        for arc in cdfg.inter_fu_arcs():
            channel = gt_design.plan.channel_of(arc.key)
            event = gt_design.phases.event_for(channel.name, arc.src)
            assert event.wire == channel.wire_name()

    def test_conditional_signals_declared(self, gt_design):
        machine = gt_design.controllers["ALU2"].machine
        cond = machine.signal("cond_C")
        assert cond.kind is SignalKind.CONDITIONAL
        assert cond.action == ("cond", "C")
