"""State minimization by simulation equivalence (src/repro/afsm/minimize.py)."""

import pytest

from repro.afsm.extract import extract_controllers
from repro.afsm.minimize import (
    MinimizeReport,
    _equivalence_classes,
    minimize_design,
    minimize_machine,
    simulation_preorder,
)
from repro.afsm.validate import collect_problems
from repro.local_transforms import optimize_local
from repro.sim.seeding import NOMINAL
from repro.sim.system import simulate_system
from repro.sim.token_sim import simulate_tokens


@pytest.fixture(scope="module")
def diffeq_design(diffeq_optimized):
    design = extract_controllers(diffeq_optimized.cdfg, diffeq_optimized.plan)
    return optimize_local(design).design


class TestSimulationPreorder:
    def test_reflexive(self, diffeq_design):
        machine = next(iter(diffeq_design.controllers.values())).machine
        relation = simulation_preorder(machine)
        for state in machine.states():
            assert (state, state) in relation

    def test_initial_state_represents_its_class(self, diffeq_design):
        for controller in diffeq_design.controllers.values():
            representative = _equivalence_classes(controller.machine)
            initial = controller.machine.initial_state
            assert representative[initial] == initial


class TestMinimizeMachine:
    def test_reduces_diffeq_controllers(self, diffeq_design):
        reduced = 0
        for controller in diffeq_design.controllers.values():
            machine, report = minimize_machine(controller.machine)
            assert report.gate_failure == ""
            if report.applied:
                reduced += 1
                assert machine.state_count < controller.machine.state_count
                assert not collect_problems(machine)
        assert reduced > 0

    def test_never_mutates_the_input(self, diffeq_design):
        controller = next(iter(diffeq_design.controllers.values()))
        before_states = controller.machine.state_count
        before_transitions = controller.machine.transition_count
        minimize_machine(controller.machine)
        assert controller.machine.state_count == before_states
        assert controller.machine.transition_count == before_transitions

    def test_idempotent(self, diffeq_design):
        controller = next(iter(diffeq_design.controllers.values()))
        once, report = minimize_machine(controller.machine)
        twice, second = minimize_machine(once)
        assert not second.applied
        assert twice.state_count == once.state_count

    def test_gate_rejection_keeps_the_original(self, diffeq_design, monkeypatch):
        from repro.verify import flow
        from repro.verify.flow import FlowObligation

        monkeypatch.setattr(
            flow,
            "machine_flow_obligations",
            lambda before, after: (
                [FlowObligation("streams", "refuted", "injected")],
                None,
            ),
        )
        controller = next(
            c
            for c in diffeq_design.controllers.values()
            if minimize_machine(c.machine)[1].applied or True
        )
        machine, report = minimize_machine(controller.machine)
        if report.gate_failure:
            assert machine is controller.machine
            assert not report.applied
            assert "injected" in report.gate_failure

    def test_report_summary_strings(self):
        applied = MinimizeReport(
            "ALU1", applied=True, before_states=12, after_states=10, merged=["a <- b"]
        )
        assert "12 -> 10" in applied.summary()
        rejected = MinimizeReport("ALU1", gate_failure="streams: x")
        assert "rejected" in rejected.summary()
        noop = MinimizeReport("ALU1", before_states=7, after_states=7)
        assert "already minimal" in noop.summary()


class TestMinimizeDesign:
    def test_diffeq_total_reduction(self, diffeq_design):
        minimized, reports, proofs = minimize_design(diffeq_design)
        before = sum(r.before_states for r in reports)
        after = sum(r.after_states for r in reports)
        assert after < before
        assert all(p.proved for p in proofs)
        assert {p.verdict for p in proofs} <= {"proved", "no-op"}

    def test_minimized_design_still_conformant(self, diffeq, diffeq_design):
        minimized, __, __ = minimize_design(diffeq_design)
        golden = simulate_tokens(diffeq, seed=NOMINAL).registers
        result = simulate_system(minimized, seed=NOMINAL)
        assert result.registers == golden
        assert not result.violations
        assert not result.hazards

    def test_same_makespan_as_unminimized(self, diffeq_design):
        minimized, __, __ = minimize_design(diffeq_design)
        original = simulate_system(diffeq_design, seed=NOMINAL)
        reduced = simulate_system(minimized, seed=NOMINAL)
        assert reduced.end_time == original.end_time

    def test_controllers_rewired(self, diffeq_design):
        minimized, __, __ = minimize_design(diffeq_design)
        assert set(minimized.controllers) == set(diffeq_design.controllers)
        for fu, controller in minimized.controllers.items():
            original = diffeq_design.controllers[fu]
            assert set(controller.input_wires) == set(original.input_wires)
            assert set(controller.output_wires) == set(original.output_wires)

    @pytest.mark.parametrize("workload", ["gcd", "ewf", "fir"])
    def test_other_workloads_conformant(self, workload):
        from repro.transforms import optimize_global
        from repro.workloads import WORKLOADS

        cdfg = WORKLOADS[workload]()
        optimized = optimize_global(cdfg)
        design = optimize_local(
            extract_controllers(optimized.cdfg, optimized.plan)
        ).design
        minimized, reports, proofs = minimize_design(design)
        assert all(p.proved for p in proofs)
        result = simulate_system(minimized, seed=NOMINAL)
        assert result.registers == simulate_tokens(cdfg, seed=NOMINAL).registers
        assert not result.violations
