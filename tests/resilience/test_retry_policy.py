"""Jittered retry backoff: seeded-deterministic, capped, monotonic."""

import multiprocessing

from repro.resilience.pool import RetryPolicy


def _delays_in_subprocess(queue) -> None:
    policy = RetryPolicy(max_retries=4, base_delay=0.1, max_delay=2.0, seed=9)
    queue.put(policy.schedule())


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        one = RetryPolicy(seed=42)
        two = RetryPolicy(seed=42)
        assert one.schedule() == two.schedule()

    def test_different_seeds_jitter_differently(self):
        one = RetryPolicy(seed=1, jitter=0.5)
        two = RetryPolicy(seed=2, jitter=0.5)
        assert one.schedule() != two.schedule()

    def test_schedule_is_stable_across_processes(self):
        """String seeding hashes with SHA-512, not PYTHONHASHSEED, so a
        retrying worker in another process paces identically — the
        regression this test pins after the serve layer started
        sharing policies between the dispatcher and drill scripts."""
        queue = multiprocessing.Queue()
        worker = multiprocessing.Process(target=_delays_in_subprocess, args=(queue,))
        worker.start()
        worker.join(timeout=30)
        assert worker.exitcode == 0
        local = RetryPolicy(max_retries=4, base_delay=0.1, max_delay=2.0, seed=9)
        assert queue.get(timeout=10) == local.schedule()


class TestShape:
    def test_exponential_base_with_bounded_jitter(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=0.1, max_delay=1.0, jitter=0.5, seed=0
        )
        for attempt in range(7):
            backoff = min(0.1 * (2 ** attempt), 1.0)
            delay = policy.delay(attempt)
            assert backoff <= delay <= backoff * 1.5

    def test_max_delay_caps_the_base(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.0, jitter=0.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(5) == 2.0  # capped, not 32

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.25, max_delay=8.0, jitter=0.0)
        assert [policy.delay(a) for a in range(4)] == [0.25, 0.5, 1.0, 2.0]

    def test_schedule_length_matches_budget(self):
        assert len(RetryPolicy(max_retries=3).schedule()) == 3
        assert RetryPolicy(max_retries=0).schedule() == []
