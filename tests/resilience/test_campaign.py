"""Fault campaigns: determinism, measured GT3 slack, report round-trip."""

import json

import pytest

from repro.resilience import CampaignReport, load_report, quick_probe, run_campaign


@pytest.fixture(scope="module")
def diffeq_campaign():
    return run_campaign("diffeq", seed=0, trials=4)


class TestDeterminism:
    def test_same_seed_bit_identical_json(self, diffeq_campaign):
        again = run_campaign("diffeq", seed=0, trials=4)
        assert diffeq_campaign.to_json() == again.to_json()

    def test_different_seed_changes_trials(self, diffeq_campaign):
        other = run_campaign("diffeq", seed=1, trials=4)
        assert [t.plan for t in other.trials] != [t.plan for t in diffeq_campaign.trials]

    def test_no_wall_clock_in_the_report(self, diffeq_campaign):
        text = diffeq_campaign.to_json().lower()
        for forbidden in ("timestamp", "wall", "elapsed", "duration"):
            assert forbidden not in text


class TestDiffeqSlack:
    """DIFFEQ is the paper's GT3 example: arc 10 is removed because arc
    11 provably arrives later.  The campaign measures how much timing
    slack that proof actually has."""

    def test_the_removed_arc_is_swept(self, diffeq_campaign):
        assert len(diffeq_campaign.arc_slack) == 1
        entry = diffeq_campaign.arc_slack[0]
        assert entry.src == "M2 := U * dx"
        assert entry.dst == "U := U - M1"
        assert entry.fu == "MUL2"

    def test_measured_slack_is_x1_5(self, diffeq_campaign):
        entry = diffeq_campaign.arc_slack[0]
        assert entry.max_passing_scale == 1.5
        assert entry.failing_scale == 2.0
        assert entry.failure_mode == "proof-invalidated"

    def test_baseline_and_trials_healthy(self, diffeq_campaign):
        assert diffeq_campaign.healthy
        assert diffeq_campaign.trials_ok == len(diffeq_campaign.trials) == 4

    def test_gt5_channels_swept(self, diffeq_campaign):
        assert diffeq_campaign.channel_skew
        for entry in diffeq_campaign.channel_skew:
            assert entry.arcs >= 2

    def test_summary_mentions_the_slack(self, diffeq_campaign):
        summary = diffeq_campaign.summary()
        assert "HEALTHY" in summary
        assert "x1.5" in summary
        assert "proof-invalidated" in summary


class TestReportRoundTrip:
    def test_dict_roundtrip(self, diffeq_campaign):
        rebuilt = CampaignReport.from_dict(diffeq_campaign.to_dict())
        assert rebuilt.to_dict() == diffeq_campaign.to_dict()

    def test_load_report(self, diffeq_campaign, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(diffeq_campaign.to_json() + "\n", encoding="utf-8")
        loaded = load_report(str(path))
        assert loaded.to_json() == diffeq_campaign.to_json()

    def test_json_is_sorted_and_parseable(self, diffeq_campaign):
        payload = json.loads(diffeq_campaign.to_json())
        assert payload["workload"] == "diffeq"
        assert payload["trials_ok"] == 4


class TestOtherWorkloads:
    @pytest.mark.parametrize("workload", ["gcd", "ewf", "fir"])
    def test_campaign_runs_healthy(self, workload):
        report = run_campaign(workload, seed=0, trials=2, scale_max=4.0)
        assert report.healthy

    def test_fir_has_no_gt3_removals(self):
        # an honest negative: GT3 finds nothing to remove on FIR, so
        # there is no slack to measure there
        report = run_campaign("fir", seed=0, trials=1, scale_max=2.0)
        assert report.arc_slack == []


class TestBatchedMode:
    """`batched=True` must change wall-clock only — never a report byte."""

    @pytest.mark.parametrize("workload", ["diffeq", "gcd"])
    def test_batched_report_byte_identical(self, workload):
        pytest.importorskip("numpy")
        scalar = run_campaign(workload, seed=17, trials=8)
        batched = run_campaign(workload, seed=17, trials=8, batched=True)
        assert scalar.to_json() == batched.to_json()

    def test_mc_reproof_runs_and_is_deterministic(self):
        pytest.importorskip("numpy")
        first = run_campaign("diffeq", seed=0, trials=2, mc_samples=16)
        second = run_campaign("diffeq", seed=0, trials=2, mc_samples=16, batched=True)
        assert first.to_json() == second.to_json()
        assert first.mc_samples == 16
        assert len(first.gt3_mc) == len(first.arc_slack) == 1
        entry = first.gt3_mc[0]
        assert entry.samples == 16
        # the paper's GT3 proof says arc 10 is *never* last; the
        # Monte-Carlo re-proof should agree under sampled delays
        assert entry.never_last
        assert entry.last_count == 0

    def test_mc_entries_survive_the_roundtrip(self):
        pytest.importorskip("numpy")
        report = run_campaign("diffeq", seed=0, trials=1, mc_samples=8)
        rebuilt = CampaignReport.from_dict(report.to_dict())
        assert rebuilt.to_json() == report.to_json()
        assert rebuilt.gt3_mc[0].arc == report.gt3_mc[0].arc

    def test_mc_summary_mentions_the_verdict(self):
        pytest.importorskip("numpy")
        report = run_campaign("diffeq", seed=0, trials=1, mc_samples=8)
        assert "GT3 MC" in report.summary()
        assert "never last" in report.summary()


class TestQuickProbe:
    def test_full_script_probe_ok(self, diffeq):
        verdict = quick_probe(diffeq, ("GT1", "GT2", "GT3", "GT4", "GT5"), trials=2)
        assert verdict == "ok(2)"

    def test_probe_is_deterministic(self, diffeq):
        first = quick_probe(diffeq, ("GT1", "GT2"), seed=5)
        second = quick_probe(diffeq, ("GT1", "GT2"), seed=5)
        assert first == second
