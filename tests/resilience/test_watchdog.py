"""Deadlock/stall watchdog: structured diagnosis instead of a bare hang."""

import pytest

from repro.cdfg import Arc
from repro.cdfg.arc import control_tag
from repro.errors import DeadlockError, SimulationError
from repro.sim import EventKernel, simulate_tokens
from repro.sim.kernel import RECENT_WINDOW


class TestTokenSimWatchdog:
    @pytest.fixture()
    def stalled(self, diffeq):
        broken = diffeq.copy()
        # strand the ALU1 controller: A := Y + M1 waits forever on END
        broken.add_arc(Arc("END", "A := Y + M1", frozenset({control_tag()})))
        with pytest.raises(DeadlockError) as info:
            simulate_tokens(broken)
        return info.value

    def test_deadlock_is_a_simulation_error(self, stalled):
        assert isinstance(stalled, SimulationError)

    def test_waiting_nodes_carry_missing_and_held_arcs(self, stalled):
        assert stalled.waiting
        blocked = {entry["node"] for entry in stalled.waiting}
        assert "A := Y + M1" in blocked
        for entry in stalled.waiting:
            assert entry["missing"], "a waiting node must name what never arrived"

    def test_blocked_channels_named(self, stalled):
        assert any("END" in channel for channel in stalled.blocked_channels)

    def test_recent_events_from_the_causal_log(self, stalled):
        assert stalled.recent_events
        assert len(stalled.recent_events) <= RECENT_WINDOW

    def test_quiescence_time_recorded(self, stalled):
        assert stalled.time > 0.0

    def test_to_dict_structure(self, stalled):
        payload = stalled.to_dict()
        assert set(payload) == {
            "time",
            "waiting",
            "blocked_channels",
            "recent_events",
            "message",
        }
        assert "deadlock" in payload["message"]


class TestKernelWatchdog:
    def test_recent_labels_window(self):
        kernel = EventKernel()
        for index in range(RECENT_WINDOW + 5):
            kernel.schedule(float(index), lambda: None, label=f"event{index}")
        kernel.run()
        assert len(kernel.recent_labels) == RECENT_WINDOW
        assert kernel.recent_labels[-1] == f"event{RECENT_WINDOW + 4}"

    def test_event_limit_message_has_context(self):
        kernel = EventKernel()

        def forever():
            kernel.schedule(1.0, forever, label="runaway")

        kernel.schedule(1.0, forever, label="runaway")
        with pytest.raises(SimulationError) as info:
            kernel.run(max_events=100)
        message = str(info.value)
        assert "exceeded 100 events" in message
        assert "at t=" in message
        assert "still pending" in message
        assert "runaway" in message  # the last executed labels are listed
