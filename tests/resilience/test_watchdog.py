"""Deadlock/stall watchdog: structured diagnosis instead of a bare hang."""

import pytest

from repro.cdfg import Arc
from repro.cdfg.arc import control_tag
from repro.errors import DeadlockError, SimulationError
from repro.sim import EventKernel, simulate_tokens
from repro.sim.kernel import RECENT_WINDOW


class TestTokenSimWatchdog:
    @pytest.fixture()
    def stalled(self, diffeq):
        broken = diffeq.copy()
        # strand the ALU1 controller: A := Y + M1 waits forever on END
        broken.add_arc(Arc("END", "A := Y + M1", frozenset({control_tag()})))
        with pytest.raises(DeadlockError) as info:
            simulate_tokens(broken)
        return info.value

    def test_deadlock_is_a_simulation_error(self, stalled):
        assert isinstance(stalled, SimulationError)

    def test_waiting_nodes_carry_missing_and_held_arcs(self, stalled):
        assert stalled.waiting
        blocked = {entry["node"] for entry in stalled.waiting}
        assert "A := Y + M1" in blocked
        for entry in stalled.waiting:
            assert entry["missing"], "a waiting node must name what never arrived"

    def test_blocked_channels_named(self, stalled):
        assert any("END" in channel for channel in stalled.blocked_channels)

    def test_recent_events_from_the_causal_log(self, stalled):
        assert stalled.recent_events
        assert len(stalled.recent_events) <= RECENT_WINDOW

    def test_quiescence_time_recorded(self, stalled):
        assert stalled.time > 0.0

    def test_to_dict_structure(self, stalled):
        payload = stalled.to_dict()
        assert set(payload) == {
            "time",
            "waiting",
            "blocked_channels",
            "recent_events",
            "message",
        }
        assert "deadlock" in payload["message"]


class TestKernelWatchdog:
    def test_recent_labels_window(self):
        kernel = EventKernel()
        for index in range(RECENT_WINDOW + 5):
            kernel.schedule(float(index), lambda: None, label=f"event{index}")
        kernel.run()
        assert len(kernel.recent_labels) == RECENT_WINDOW
        assert kernel.recent_labels[-1] == f"event{RECENT_WINDOW + 4}"

    def test_event_limit_message_has_context(self):
        kernel = EventKernel()

        def forever():
            kernel.schedule(1.0, forever, label="runaway")

        kernel.schedule(1.0, forever, label="runaway")
        with pytest.raises(SimulationError) as info:
            kernel.run(max_events=100)
        message = str(info.value)
        assert "exceeded 100 events" in message
        assert "at t=" in message
        assert "still pending" in message
        assert "runaway" in message  # the last executed labels are listed


class TestPointDeadlineWatchdog:
    """The SIGALRM point watchdog must say so when it cannot arm."""

    def _run_off_main_thread(self, fn):
        import threading

        box = {}

        def runner():
            try:
                box["result"] = fn()
            except BaseException as exc:  # pragma: no cover - surfaced below
                box["error"] = exc

        thread = threading.Thread(target=runner)
        thread.start()
        thread.join()
        if "error" in box:
            raise box["error"]
        return box["result"]

    def test_enforced_on_the_main_thread(self):
        from repro.errors import ReproError
        from repro.resilience.injection import (
            PointTimeout,
            point_deadline,
            watchdog_unavailable_reason,
        )

        assert watchdog_unavailable_reason() is None
        with pytest.raises(PointTimeout):
            with point_deadline(0.01):
                while True:
                    pass
        assert issubclass(PointTimeout, ReproError)

    def test_skip_off_main_thread_warns_once_naming_the_reason(self):
        import warnings

        from repro.resilience.injection import (
            _reset_watchdog_warning,
            point_deadline,
            watchdog_unavailable_reason,
        )

        def scenario():
            assert "main thread" in watchdog_unavailable_reason()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with point_deadline(5.0):
                    pass
                with point_deadline(5.0):
                    pass
            return caught

        _reset_watchdog_warning()
        try:
            caught = self._run_off_main_thread(scenario)
        finally:
            _reset_watchdog_warning()
        messages = [str(w.message) for w in caught]
        assert len(messages) == 1, messages
        assert "not enforced" in messages[0]
        assert "main thread" in messages[0]

    def test_no_warning_when_no_deadline_requested(self):
        import warnings

        from repro.resilience.injection import _reset_watchdog_warning, point_deadline

        def scenario():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with point_deadline(None):
                    pass
            return caught

        _reset_watchdog_warning()
        try:
            caught = self._run_off_main_thread(scenario)
        finally:
            _reset_watchdog_warning()
        assert caught == []

    def test_watchdog_active_helper(self):
        from repro.resilience.injection import watchdog_active

        assert watchdog_active() is True
        # pool workers evaluate on their own main thread, so a pooled
        # sweep is armed even when the parent checks from elsewhere
        assert self._run_off_main_thread(lambda: watchdog_active(pooled=True)) is True
        assert self._run_off_main_thread(lambda: watchdog_active()) is False


class TestExploreWatchdogStat:
    def test_stats_record_armed_watchdog(self, gcd):
        from repro.explore import explore_design_space

        result = explore_design_space(
            gcd,
            global_subsets=[()],
            local_subsets=[()],
            point_timeout=60.0,
        )
        assert result.stats["watchdog_active"] is True

    def test_stats_silent_without_a_timeout(self, gcd):
        from repro.explore import explore_design_space

        result = explore_design_space(gcd, global_subsets=[()], local_subsets=[()])
        assert "watchdog_active" not in result.stats
