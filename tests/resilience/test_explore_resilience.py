"""Fault-tolerant exploration: crashed workers, bad points, timeouts.

The headline acceptance test injects a worker crash into a full
64-point sweep and checks the result set is still complete, with
exactly the crashed points marked ``failed``.
"""

import pytest

from repro.cache.store import ArtifactCache
from repro.explore import explore_design_space
from repro.resilience.injection import ConfigFaultInjector
from repro.workloads import build_diffeq_cdfg

SMALL_GTS = [(), ("GT1",), ("GT1", "GT2"), ("GT1", "GT2", "GT3")]
SMALL_LTS = [(), ("LT4", "LT2", "LT1", "LT5")]


def _failed_configs(result):
    return sorted(
        (point.global_transforms, point.local_transforms)
        for point in result.failed_points()
    )


class TestWorkerCrashRecovery:
    def test_64_point_sweep_survives_a_worker_crash(self, diffeq, tmp_path):
        """A worker dying mid-sweep must not lose any grid point."""
        injector = ConfigFaultInjector.for_configs(
            [("GT1",)], mode="exit", once_marker=str(tmp_path / "crashed")
        )
        result = explore_design_space(
            diffeq,
            workers=4,
            incremental=False,
            fault_injector=injector,
        )
        assert len(result.points) == 64
        failed = result.failed_points()
        assert len(failed) == 2  # ('GT1',) x {no LTs, all LTs} — nothing else
        assert all(point.global_transforms == ("GT1",) for point in failed)
        assert result.stats["pool"]["broken_pools"] >= 1
        assert result.stats["failed"] == 2
        ok = [point for point in result.points if point.status == "ok"]
        assert len(ok) == 62 and all(point.conformant for point in ok)

    def test_persistent_crasher_degrades_to_serial(self, diffeq):
        # no once-marker: the point kills every worker that touches it,
        # so the map must give up on pools and finish in-process (where
        # the injector degrades to a raise and the point comes back failed)
        injector = ConfigFaultInjector.for_configs([("GT1",)], mode="exit")
        result = explore_design_space(
            diffeq,
            global_subsets=SMALL_GTS,
            local_subsets=SMALL_LTS,
            workers=2,
            incremental=False,
            retries=1,
            fault_injector=injector,
        )
        assert len(result.points) == len(SMALL_GTS) * len(SMALL_LTS)
        assert result.stats["pool"]["degraded_serial"] is True
        assert _failed_configs(result) == [
            (("GT1",), ()),
            (("GT1",), ("LT4", "LT2", "LT1", "LT5")),
        ]


class TestInjectedPointFailures:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_raise_injection_fails_exactly_the_targets(self, diffeq, incremental):
        injector = ConfigFaultInjector.for_configs([("GT1",), ()])
        result = explore_design_space(
            diffeq,
            global_subsets=SMALL_GTS,
            local_subsets=SMALL_LTS,
            incremental=incremental,
            fault_injector=injector,
        )
        assert len(result.points) == len(SMALL_GTS) * len(SMALL_LTS)
        failed = result.failed_points()
        assert sorted(point.global_transforms for point in failed) == [
            (),
            (),
            ("GT1",),
            ("GT1",),
        ]
        assert all("InjectedFault" in point.error for point in failed)

    def test_failed_points_stay_off_the_frontier(self, diffeq):
        injector = ConfigFaultInjector.for_configs([("GT1", "GT2", "GT3")])
        result = explore_design_space(
            diffeq,
            global_subsets=SMALL_GTS,
            local_subsets=SMALL_LTS,
            incremental=False,
            fault_injector=injector,
        )
        frontier = result.pareto_points()
        assert frontier
        assert all(point.status == "ok" for point in frontier)
        assert result.best("makespan").status == "ok"

    def test_all_points_failed_has_no_best(self, diffeq):
        result = explore_design_space(
            diffeq,
            global_subsets=[()],
            local_subsets=[()],
            incremental=False,
            fault_injector=ConfigFaultInjector.for_configs([()]),
        )
        assert len(result.failed_points()) == 1
        with pytest.raises(ValueError, match="no successfully evaluated"):
            result.best("makespan")

    def test_point_timeout_becomes_a_failed_point(self, diffeq):
        result = explore_design_space(
            diffeq,
            global_subsets=[(), ("GT1",)],
            local_subsets=[()],
            incremental=False,
            point_timeout=1e-6,
        )
        assert len(result.points) == 2
        assert all(point.status == "failed" for point in result.points)
        assert all("PointTimeout" in point.error for point in result.points)


class TestFailuresNeverCached:
    def test_warm_run_reattempts_failed_points(self, diffeq, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        injector = ConfigFaultInjector.for_configs([("GT1",)])
        cold = explore_design_space(
            diffeq,
            global_subsets=SMALL_GTS,
            local_subsets=SMALL_LTS,
            cache=cache,
            fault_injector=injector,
        )
        assert len(cold.failed_points()) == 2

        # same cache, injector gone: the crash must not have been
        # memoized, so the formerly-failed points are re-evaluated
        warm_cache = ArtifactCache(str(tmp_path))
        warm = explore_design_space(
            diffeq,
            global_subsets=SMALL_GTS,
            local_subsets=SMALL_LTS,
            cache=warm_cache,
        )
        assert warm.failed_points() == []
        assert len(warm.points) == len(SMALL_GTS) * len(SMALL_LTS)
        assert all(point.conformant for point in warm.points)
        assert warm.stats["evaluations"] > 0  # the failed points re-ran


def _interrupt_gt1_gt2(global_transforms, local_transforms):
    if tuple(global_transforms) == ("GT1", "GT2"):
        raise KeyboardInterrupt


class TestInterruptPreservesPartials:
    def test_serial_interrupt_returns_completed_points(self, diffeq):
        result = explore_design_space(
            diffeq,
            global_subsets=SMALL_GTS,
            local_subsets=SMALL_LTS,
            incremental=False,
            fault_injector=_interrupt_gt1_gt2,
        )
        assert result.stats["interrupted"] is True
        # payloads run in grid order: everything before the interrupt
        # point completed and is preserved
        assert len(result.points) == 4
        assert all(point.status == "ok" for point in result.points)
