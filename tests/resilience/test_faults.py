"""Fault plans: perturbation semantics, determinism, identity property."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    fault_targets,
    unit_slowdown,
)
from repro.sim.seeding import NOMINAL
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.workloads import build_diffeq_cdfg

from tests.strategies import fault_plans


class TestFaultSpec:
    def test_scale_multiplies_both_bounds(self):
        spec = FaultSpec(kind="scale", fu="MUL1", operator="*", magnitude=1.0)
        assert spec.perturb((6.0, 9.0)) == (12.0, 18.0)

    def test_jitter_stretches_only_the_upper_bound(self):
        spec = FaultSpec(kind="jitter", fu="MUL1", operator="*", magnitude=0.5)
        assert spec.perturb((6.0, 9.0)) == (6.0, 10.5)

    def test_stuck_slow_pins_the_interval(self):
        spec = FaultSpec(kind="stuck_slow", fu="MUL1", operator="*", magnitude=0.5)
        assert spec.perturb((6.0, 9.0)) == (13.5, 13.5)

    @pytest.mark.parametrize("kind", ["scale", "jitter"])
    def test_zero_magnitude_is_identity(self, kind):
        spec = FaultSpec(kind=kind, fu="MUL1", operator="*", magnitude=0.0)
        assert spec.perturb((6.0, 9.0)) == (6.0, 9.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="teleport", fu="MUL1", operator="*", magnitude=0.5)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="scale", fu="MUL1", operator="*", magnitude=-0.5)

    def test_roundtrip(self):
        spec = FaultSpec(kind="jitter", fu="ALU1", operator="+", magnitude=0.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_apply_never_mutates_the_base(self):
        base = DelayModel()
        nominal = base.operator_interval("MUL1", "*")
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(kind="scale", fu="MUL1", operator="*", magnitude=1.0),)
        )
        faulted = plan.apply(base)
        assert base.operator_interval("MUL1", "*") == nominal
        assert faulted.operator_interval("MUL1", "*") == (nominal[0] * 2, nominal[1] * 2)

    def test_generate_is_deterministic_in_seed(self):
        targets = fault_targets(build_diffeq_cdfg())
        assert FaultPlan.generate(targets, seed=7) == FaultPlan.generate(targets, seed=7)
        assert FaultPlan.generate(targets, seed=7) != FaultPlan.generate(targets, seed=8)

    def test_generate_quantizes_magnitudes(self):
        targets = fault_targets(build_diffeq_cdfg())
        plan = FaultPlan.generate(targets, seed=3, count=8)
        for spec in plan.specs:
            assert spec.magnitude * 16 == int(spec.magnitude * 16)
            assert spec.kind in FAULT_KINDS

    def test_roundtrip(self):
        targets = fault_targets(build_diffeq_cdfg())
        plan = FaultPlan.generate(targets, seed=11, count=3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_worst_case_slowdown_bounds_every_spec(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(kind="scale", fu="MUL1", operator="*", magnitude=0.5),
                FaultSpec(kind="stuck_slow", fu="ALU1", operator="+", magnitude=0.25),
            ),
        )
        # stuck_slow dominates: pinned at high * 1.25, and high <= 2 * midpoint
        assert plan.worst_case_slowdown() == 2.0 * 1.25

    def test_empty_plan_slowdown_is_one(self):
        assert FaultPlan(seed=0).worst_case_slowdown() == 1.0


class TestTargets:
    def test_fault_targets_sorted_pairs(self):
        targets = fault_targets(build_diffeq_cdfg())
        assert targets == sorted(targets)
        assert ("MUL1", "*") in targets

    def test_unit_slowdown_restricted_to_the_unit(self):
        specs = unit_slowdown(build_diffeq_cdfg(), "MUL1", 0.5)
        assert specs
        assert all(spec.fu == "MUL1" for spec in specs)
        assert all(spec.kind == "scale" for spec in specs)


class TestZeroMagnitudeProperty:
    """Zero-magnitude scale/jitter plans reproduce the nominal run bit
    for bit — the identity the whole campaign's deltas are measured
    against."""

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(fault_plans("diffeq", magnitude_max=0.0, kinds=("scale", "jitter")))
    def test_zero_magnitude_plan_reproduces_nominal(self, plan):
        cdfg = build_diffeq_cdfg()
        nominal = simulate_tokens(cdfg, delay_model=DelayModel(), seed=NOMINAL)
        faulted = simulate_tokens(cdfg, delay_model=plan.apply(DelayModel()), seed=NOMINAL)
        assert faulted.registers == nominal.registers
        assert faulted.end_time == nominal.end_time
