"""Interval arrival-time analysis and the GT3 dominance proof."""

import pytest

from repro.errors import TimingError
from repro.timing import DelayModel, compute_arrival_times, critical_path
from repro.timing.analysis import relative_arc_dominates
from repro.transforms import LoopParallelism, RemoveDominatedConstraints
from repro.workloads import build_diffeq_cdfg
from repro.workloads.diffeq import N_B, N_M1B, N_M2, N_U


@pytest.fixture
def prepared():
    cdfg = build_diffeq_cdfg()
    LoopParallelism().apply(cdfg)
    RemoveDominatedConstraints().apply(cdfg)
    return cdfg


class TestArrivalTimes:
    def test_intervals_are_ordered(self, diffeq):
        times = compute_arrival_times(diffeq)
        for interval in times.completion.values():
            assert interval[0] <= interval[1]

    def test_b_completes_before_loop_body(self, diffeq):
        times = compute_arrival_times(diffeq)
        b_interval = times.completion_of(N_B)
        first_mul = times.completion_of("M1 := U * X1", iteration=0)
        assert b_interval[1] <= first_mul[1]

    def test_later_iterations_complete_later(self, diffeq):
        times = compute_arrival_times(diffeq, unfold=3)
        first = times.completion_of(N_U, iteration=0)
        last = times.completion_of(N_U, iteration=2)
        assert last[0] > first[0]

    def test_unfold_must_be_positive(self, diffeq):
        with pytest.raises(TimingError):
            compute_arrival_times(diffeq, unfold=0)

    def test_critical_path_ends_at_end(self, diffeq):
        times = compute_arrival_times(diffeq)
        path = critical_path(diffeq, times)
        assert path[-1] == "END"
        assert len(path) > 3


class TestRelativeDominance:
    def test_paper_example(self, prepared):
        candidate = prepared.arc(N_M2, N_U)  # arc 10
        witness = prepared.arc(N_M1B, N_U)  # arc 11
        assert relative_arc_dominates(prepared, candidate, witness)

    def test_not_symmetric(self, prepared):
        candidate = prepared.arc(N_M2, N_U)
        witness = prepared.arc(N_M1B, N_U)
        assert not relative_arc_dominates(prepared, witness, candidate)

    def test_requires_shared_destination(self, prepared):
        left = prepared.arc(N_M2, N_U)
        other = prepared.arc("M1 := U * X1", "A := Y + M1")
        with pytest.raises(TimingError):
            relative_arc_dominates(prepared, left, other)

    def test_delay_sensitivity(self, prepared):
        slow_alu = DelayModel().with_override("ALU1", "+", (50.0, 60.0))
        fast_mul = slow_alu.with_override("MUL1", "*", (0.5, 1.0))
        candidate = prepared.arc(N_M2, N_U)
        witness = prepared.arc(N_M1B, N_U)
        # with a 50-cycle ALU in the witness chain the proof still holds
        assert relative_arc_dominates(prepared, candidate, witness, delays=slow_alu)
        # an (implausibly) slow candidate multiplier breaks it
        slow_m2 = DelayModel().with_override("MUL2", "*", (100.0, 120.0))
        assert not relative_arc_dominates(prepared, candidate, witness, delays=slow_m2)

    def test_backward_arcs_not_provable(self, prepared):
        backward = next(arc for arc in prepared.arcs() if arc.backward)
        same_dst = [
            arc
            for arc in prepared.arcs_to(backward.dst)
            if arc.key != backward.key and not prepared.is_iterate_arc(arc)
        ]
        for witness in same_dst:
            assert not relative_arc_dominates(prepared, backward, witness)
