"""Delay model behaviour."""

import random

import pytest

from repro.cdfg import Node, NodeKind
from repro.errors import TimingError
from repro.rtl import parse_statement
from repro.timing import DelayModel


def _node(text, fu="ALU"):
    return Node(text, NodeKind.OPERATION, fu=fu, statements=(parse_statement(text),))


class TestIntervals:
    def test_multiply_slower_than_add(self):
        model = DelayModel()
        add = model.interval_for(_node("A := B + C"))
        mul = model.interval_for(_node("A := B * C"))
        assert mul[0] > add[1]

    def test_copy_uses_copy_delay(self):
        model = DelayModel()
        assert model.interval_for(_node("A := B")) == model.copy_delay

    def test_structural_delay(self):
        model = DelayModel()
        loop = Node("LOOP", NodeKind.LOOP, fu="ALU", condition="C")
        assert model.interval_for(loop) == model.structural_delay

    def test_merged_node_takes_max(self):
        model = DelayModel()
        merged = Node(
            "Y := Y + M2; X1 := X",
            NodeKind.OPERATION,
            fu="ALU",
            statements=(parse_statement("Y := Y + M2"), parse_statement("X1 := X")),
        )
        add = model.interval_for(_node("Y := Y + M2"))
        assert model.interval_for(merged) == add  # add dominates the copy

    def test_override_specific_beats_unit_wide(self):
        model = DelayModel().with_override("ALU", None, (10.0, 11.0))
        model = model.with_override("ALU", "+", (1.0, 2.0))
        assert model.interval_for(_node("A := B + C")) == (1.0, 2.0)
        assert model.interval_for(_node("A := B * C")) == (10.0, 11.0)

    def test_unknown_operator_raises(self):
        model = DelayModel(operator_delays={})
        with pytest.raises(TimingError):
            model.interval_for(_node("A := B + C"))


class TestSampling:
    def test_nominal_is_midpoint(self):
        model = DelayModel().with_override("ALU", "+", (2.0, 4.0))
        assert model.nominal(_node("A := B + C")) == 3.0

    def test_sample_within_bounds(self):
        model = DelayModel()
        node = _node("A := B * C")
        low, high = model.interval_for(node)
        rng = random.Random(0)
        for __ in range(100):
            assert low <= model.sample(node, rng) <= high

    def test_invalid_interval_rejected(self):
        with pytest.raises(TimingError):
            DelayModel().with_override("ALU", "+", (3.0, 1.0))
        with pytest.raises(TimingError):
            DelayModel().with_override("ALU", "+", (-1.0, 1.0))

    def test_operator_interval_public_api(self):
        model = DelayModel()
        assert model.operator_interval("ALU", None) == model.copy_delay
        assert model.operator_interval("ALU", "*") == model.operator_delays["*"]


class TestSampleMatrix:
    """The batch sampler's documented draw-order contract."""

    def _nodes(self):
        return [_node("A := B + C"), _node("A := B * C"), _node("A := B - C")]

    def test_batch_of_one_is_the_scalar_shim(self):
        pytest.importorskip("numpy")
        model = DelayModel()
        nodes = self._nodes()
        matrix = model.sample_matrix(nodes, random.Random(42), batch=1)
        rng = random.Random(42)
        expected = [model.sample(node, rng) for node in nodes]
        assert list(matrix[0]) == expected

    def test_draw_order_is_node_major(self):
        pytest.importorskip("numpy")
        model = DelayModel()
        nodes = self._nodes()
        matrix = model.sample_matrix(nodes, random.Random(7), batch=3)
        rng = random.Random(7)
        for column, node in enumerate(nodes):
            for row in range(3):
                assert matrix[row, column] == model.sample(node, rng)

    def test_samples_within_bounds(self):
        pytest.importorskip("numpy")
        model = DelayModel()
        nodes = self._nodes()
        matrix = model.sample_matrix(nodes, random.Random(0), batch=16)
        assert matrix.shape == (16, len(nodes))
        for column, node in enumerate(nodes):
            low, high = model.interval_for(node)
            assert (matrix[:, column] >= low).all()
            assert (matrix[:, column] <= high).all()
