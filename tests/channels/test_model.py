"""Channel and channel-plan containers."""

import pytest

from repro.channels import Channel, ChannelPlan, derive_channels
from repro.errors import CdfgError


def _channel(name="ch0", src="A", dsts=("B",), arcs=()):
    return Channel(name=name, src_fu=src, dst_fus=frozenset(dsts), arcs=list(arcs))


class TestChannel:
    def test_multiway_flag(self):
        assert not _channel(dsts=("B",)).is_multiway
        assert _channel(dsts=("B", "C")).is_multiway

    def test_env_flag(self):
        assert _channel(src="ENV").is_env
        assert _channel(dsts=("ENV",)).is_env
        assert not _channel().is_env

    def test_str_mentions_receivers(self):
        text = str(_channel(dsts=("B", "C")))
        assert "B+C" in text and "multi-way" in text


class TestChannelPlan:
    def test_double_assignment_rejected(self):
        plan = ChannelPlan()
        plan.add(_channel(arcs=[("x", "y")]))
        with pytest.raises(CdfgError):
            plan.add(_channel(name="ch1", arcs=[("x", "y")]))

    def test_lookup(self):
        plan = ChannelPlan()
        channel = plan.add(_channel(arcs=[("x", "y")]))
        assert plan.channel_of(("x", "y")) is channel
        with pytest.raises(CdfgError):
            plan.channel_of(("a", "b"))
        with pytest.raises(CdfgError):
            plan.by_name("missing")

    def test_counts(self):
        plan = ChannelPlan()
        plan.add(_channel(name="c1", arcs=[("a", "b")]))
        plan.add(_channel(name="c2", src="ENV", arcs=[("s", "t")]))
        plan.add(_channel(name="c3", dsts=("B", "C"), arcs=[("u", "v")]))
        assert plan.count() == 3
        assert plan.count(include_env=False) == 2
        assert plan.multiway_count() == 1
        assert len(plan.controller_channels()) == 2


class TestDerive:
    def test_one_channel_per_inter_fu_arc(self, diffeq):
        plan = derive_channels(diffeq)
        assert plan.count() == len(diffeq.inter_fu_arcs())

    def test_intra_fu_arcs_excluded(self, diffeq):
        plan = derive_channels(diffeq)
        for channel in plan.channels:
            for src, dst in channel.arcs:
                assert diffeq.fu_of(src) != diffeq.fu_of(dst)

    def test_summary_readable(self, diffeq):
        text = derive_channels(diffeq).summary()
        assert "17 channels" in text
