"""Block-tree reconstruction."""

from repro.cdfg import CdfgBuilder, block_tree
from repro.cdfg.blocks import enclosing_loops, innermost_loop


def _nested():
    builder = CdfgBuilder("t")
    builder.op("P := A + B", fu="ALU")
    with builder.loop("C", fu="ALU") as outer_root:
        builder.op("X := X + A", fu="ALU")
        with builder.if_block("D", fu="ALU") as branch:
            builder.op("Y := Y + A", fu="ALU")
            with branch.otherwise():
                builder.op("Y := Y - A", fu="ALU")
        builder.op("C := X < A", fu="ALU")
    return builder.build(), outer_root


class TestBlockTree:
    def test_top_level_members(self, diffeq):
        tree = block_tree(diffeq)
        assert tree.is_top
        assert "B := dx2 + dx" in tree.members
        assert len(tree.children) == 1

    def test_loop_block(self, diffeq):
        tree = block_tree(diffeq)
        loop = tree.children[0]
        assert loop.is_loop
        assert loop.root == "LOOP"
        assert loop.close == "ENDLOOP"
        assert "A := Y + M1" in loop.members

    def test_nested_structure(self):
        cdfg, outer_root = _nested()
        tree = block_tree(cdfg)
        loop = tree.children[0]
        assert loop.root == outer_root
        assert len(loop.children) == 1
        if_block = loop.children[0]
        assert if_block.root == "IF"
        assert if_block.close == "ENDIF"
        assert if_block.parent is loop

    def test_all_members_recursive(self):
        cdfg, __ = _nested()
        tree = block_tree(cdfg)
        loop = tree.children[0]
        names = loop.all_members()
        assert "Y := Y + A" in names
        assert "IF" in names


class TestLoopQueries:
    def test_innermost_loop(self, diffeq):
        assert innermost_loop(diffeq, "A := Y + M1") == "LOOP"
        assert innermost_loop(diffeq, "B := dx2 + dx") is None

    def test_enclosing_loops_nested(self):
        cdfg, outer_root = _nested()
        assert enclosing_loops(cdfg, "Y := Y + A") == [outer_root]
        assert enclosing_loops(cdfg, "X := X + A") == [outer_root]
