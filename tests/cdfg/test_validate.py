"""Well-formedness checker coverage."""

import pytest

from repro.cdfg import Arc, Cdfg, CdfgBuilder, Node, NodeKind, check_well_formed
from repro.cdfg.arc import control_tag, scheduling_tag
from repro.cdfg.validate import collect_problems
from repro.errors import ValidationError
from repro.rtl import parse_statement


def _op(name, fu="ALU"):
    return Node(name, NodeKind.OPERATION, fu=fu, statements=(parse_statement(name),))


class TestBasicInvariants:
    def test_missing_start(self):
        cdfg = Cdfg("t")
        cdfg.add_node(Node("END", NodeKind.END))
        problems = collect_problems(cdfg)
        assert any("START" in p for p in problems)

    def test_two_ends(self):
        cdfg = Cdfg("t")
        cdfg.add_node(Node("START", NodeKind.START))
        cdfg.add_node(Node("END", NodeKind.END))
        cdfg.add_node(Node("END2", NodeKind.END))
        problems = collect_problems(cdfg)
        assert any("END" in p for p in problems)

    def test_unreachable_node_flagged(self):
        cdfg = Cdfg("t")
        cdfg.add_node(Node("START", NodeKind.START))
        cdfg.add_node(Node("END", NodeKind.END))
        cdfg.add_node(_op("A := B + C"))
        cdfg.add_arc(Arc("START", "END", frozenset({control_tag()})))
        problems = collect_problems(cdfg)
        assert any("unreachable" in p for p in problems)

    def test_forward_cycle_flagged(self):
        cdfg = Cdfg("t")
        cdfg.add_node(Node("START", NodeKind.START))
        cdfg.add_node(Node("END", NodeKind.END))
        cdfg.add_node(_op("A := B + C"))
        cdfg.add_node(_op("B := A + C"))
        cdfg.add_arc(Arc("START", "A := B + C", frozenset({control_tag()})))
        cdfg.add_arc(Arc("A := B + C", "B := A + C", frozenset({control_tag()})))
        cdfg.add_arc(Arc("B := A + C", "A := B + C", frozenset({control_tag()})))
        cdfg.add_arc(Arc("B := A + C", "END", frozenset({control_tag()})))
        problems = collect_problems(cdfg)
        assert any("cycle" in p for p in problems)

    def test_scheduling_arc_across_units_flagged(self):
        cdfg = Cdfg("t")
        cdfg.add_node(Node("START", NodeKind.START))
        cdfg.add_node(Node("END", NodeKind.END))
        cdfg.add_node(_op("A := B + C", fu="ALU"))
        cdfg.add_node(_op("D := B * C", fu="MUL"))
        cdfg.add_arc(Arc("START", "A := B + C", frozenset({control_tag()})))
        cdfg.add_arc(Arc("A := B + C", "D := B * C", frozenset({scheduling_tag()})))
        cdfg.add_arc(Arc("D := B * C", "END", frozenset({control_tag()})))
        problems = collect_problems(cdfg)
        assert any("scheduling arc" in p for p in problems)

    def test_backward_arc_outside_loop_flagged(self):
        cdfg = Cdfg("t")
        cdfg.add_node(Node("START", NodeKind.START))
        cdfg.add_node(Node("END", NodeKind.END))
        cdfg.add_node(_op("A := B + C"))
        cdfg.add_node(_op("D := A + C"))
        cdfg.add_arc(Arc("START", "A := B + C", frozenset({control_tag()})))
        cdfg.add_arc(Arc("A := B + C", "D := A + C", frozenset({control_tag()})))
        cdfg.add_arc(Arc("D := A + C", "END", frozenset({control_tag()})))
        cdfg.add_arc(
            Arc("D := A + C", "A := B + C", frozenset({control_tag()}), backward=True)
        )
        problems = collect_problems(cdfg)
        assert any("backward" in p for p in problems)


class TestWorkloadsAreWellFormed:
    def test_diffeq(self, diffeq):
        check_well_formed(diffeq)

    def test_gcd(self, gcd):
        check_well_formed(gcd)

    def test_ewf(self, ewf):
        check_well_formed(ewf)

    def test_optimized_variants(self, diffeq_optimized, gcd_optimized, ewf_optimized):
        check_well_formed(diffeq_optimized.cdfg)
        check_well_formed(gcd_optimized.cdfg)
        check_well_formed(ewf_optimized.cdfg)


class TestCheckRaises:
    def test_raise_on_problem(self):
        cdfg = Cdfg("t")
        with pytest.raises(ValidationError):
            check_well_formed(cdfg)

    def test_loop_without_iterate_arc_flagged(self):
        builder = CdfgBuilder("t")
        with builder.loop("C", fu="ALU"):
            builder.op("C := C - D", fu="ALU")
        cdfg = builder.build()
        cdfg.remove_arc("ENDLOOP", "LOOP")
        problems = collect_problems(cdfg)
        assert any("iterate" in p for p in problems)
