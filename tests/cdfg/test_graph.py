"""Cdfg container behaviour."""

import pytest

from repro.cdfg import Arc, ArcRole, Cdfg, Node, NodeKind
from repro.cdfg.arc import control_tag, data_tag, register_tag, scheduling_tag
from repro.errors import CdfgError
from repro.rtl import parse_statement


def _op(name, fu="ALU"):
    return Node(name, NodeKind.OPERATION, fu=fu, statements=(parse_statement(name),))


@pytest.fixture
def small():
    cdfg = Cdfg("small")
    cdfg.add_node(Node("START", NodeKind.START))
    cdfg.add_node(_op("A := B + C"))
    cdfg.add_node(_op("D := A + C"))
    cdfg.add_node(Node("END", NodeKind.END))
    cdfg.add_arc(Arc("START", "A := B + C", frozenset({control_tag()})))
    cdfg.add_arc(Arc("A := B + C", "D := A + C", frozenset({data_tag("A")})))
    cdfg.add_arc(Arc("D := A + C", "END", frozenset({control_tag()})))
    return cdfg


class TestNodes:
    def test_duplicate_node_rejected(self, small):
        with pytest.raises(CdfgError):
            small.add_node(_op("A := B + C"))

    def test_unknown_node_lookup(self, small):
        with pytest.raises(CdfgError):
            small.node("missing")

    def test_len_and_contains(self, small):
        assert len(small) == 4
        assert "START" in small
        assert "missing" not in small

    def test_start_end_properties(self, small):
        assert small.start.kind is NodeKind.START
        assert small.end.kind is NodeKind.END

    def test_fu_of_env(self, small):
        assert small.fu_of("START") == "ENV"
        assert small.fu_of("A := B + C") == "ALU"


class TestArcs:
    def test_parallel_arcs_merge_tags(self, small):
        small.add_arc(Arc("A := B + C", "D := A + C", frozenset({register_tag("D")})))
        arc = small.arc("A := B + C", "D := A + C")
        assert arc.has_role(ArcRole.DATA)
        assert arc.has_role(ArcRole.REGISTER)
        assert arc.registers == frozenset({"A", "D"})

    def test_merge_keeps_forward_when_mixed(self, small):
        small.add_arc(
            Arc("A := B + C", "D := A + C", frozenset({register_tag("D")}), backward=True)
        )
        assert not small.arc("A := B + C", "D := A + C").backward

    def test_arc_endpoints_must_exist(self, small):
        with pytest.raises(CdfgError):
            small.add_arc(Arc("A := B + C", "nope", frozenset({control_tag()})))

    def test_remove_arc(self, small):
        small.remove_arc("START", "A := B + C")
        assert not small.has_arc("START", "A := B + C")
        with pytest.raises(CdfgError):
            small.remove_arc("START", "A := B + C")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Arc("x", "x", frozenset({control_tag()}))

    def test_empty_tags_rejected(self):
        with pytest.raises(ValueError):
            Arc("x", "y", frozenset())


class TestQueries:
    def test_successors_predecessors(self, small):
        assert small.successors("A := B + C") == ["D := A + C"]
        assert small.predecessors("D := A + C") == ["A := B + C"]

    def test_reachability(self, small):
        assert small.implies("START", "END")
        assert not small.implies("END", "START")

    def test_reachability_with_exclusion(self, small):
        key = ("A := B + C", "D := A + C")
        assert not small.implies("A := B + C", "D := A + C", exclude_arc=key)

    def test_topological_order(self, small):
        order = small.topological_order()
        assert order.index("START") < order.index("A := B + C") < order.index("END")

    def test_cycle_detected(self, small):
        small.add_arc(Arc("D := A + C", "A := B + C", frozenset({control_tag()})))
        with pytest.raises(CdfgError):
            small.topological_order()

    def test_backward_arcs_excluded_from_forward_dag(self, small):
        small.add_arc(
            Arc("D := A + C", "A := B + C", frozenset({control_tag()}), backward=True)
        )
        small.topological_order()  # no cycle: backward arc ignored


class TestScheduleBookkeeping:
    def test_fu_schedule_order(self, small):
        assert small.fu_schedule("ALU") == ["A := B + C", "D := A + C"]

    def test_schedule_neighbors(self, small):
        assert small.schedule_neighbors("A := B + C") == (None, "D := A + C")
        assert small.schedule_neighbors("D := A + C") == ("A := B + C", None)

    def test_remove_node_updates_schedule(self, small):
        small.remove_node("A := B + C")
        assert small.fu_schedule("ALU") == ["D := A + C"]
        assert not small.has_arc("START", "A := B + C")


class TestReplaceNode:
    def test_replace_rewires_arcs(self, small):
        merged = Node(
            "D := A + C; E := A",
            NodeKind.OPERATION,
            fu="ALU",
            statements=(parse_statement("D := A + C"), parse_statement("E := A")),
        )
        small.replace_node("D := A + C", merged)
        assert small.has_arc("A := B + C", "D := A + C; E := A")
        assert small.has_arc("D := A + C; E := A", "END")
        assert small.fu_schedule("ALU")[1] == "D := A + C; E := A"

    def test_replace_requires_same_fu(self, small):
        other = _op("D := A + C", fu="MUL")
        with pytest.raises(CdfgError):
            small.replace_node("A := B + C", other)


class TestCopy:
    def test_copy_is_independent(self, small):
        clone = small.copy()
        clone.remove_arc("START", "A := B + C")
        assert small.has_arc("START", "A := B + C")
        clone.inputs["k"] = 1.0
        assert "k" not in small.inputs

    def test_copy_preserves_counts(self, small):
        clone = small.copy()
        assert len(clone) == len(small)
        assert clone.arc_count() == small.arc_count()
