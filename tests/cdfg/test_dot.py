"""DOT export sanity."""

from repro.cdfg.dot import to_dot, write_dot


class TestDot:
    def test_contains_all_nodes(self, diffeq):
        text = to_dot(diffeq)
        for node in diffeq.nodes():
            assert node.name in text

    def test_clusters_per_unit(self, diffeq):
        text = to_dot(diffeq)
        for fu in diffeq.functional_units():
            assert f"label=\"{fu}\"" in text

    def test_arc_styles(self, diffeq_optimized):
        text = to_dot(diffeq_optimized.cdfg)
        assert "style=dashed" in text  # data/register arcs
        assert "style=dotted" in text  # scheduling arcs
        assert "color=red" in text  # GT1 backward arcs

    def test_write_dot(self, diffeq, tmp_path):
        path = tmp_path / "diffeq.dot"
        write_dot(diffeq, str(path), title="Figure 1")
        content = path.read_text()
        assert content.startswith("digraph")
        assert "Figure 1" in content

    def test_quoting(self, diffeq):
        text = to_dot(diffeq)
        assert '"A := Y + M1"' in text
