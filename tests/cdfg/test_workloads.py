"""Workload construction sanity (beyond the DIFFEQ reconstruction)."""

import math

import pytest

from repro.cdfg import check_well_formed
from repro.workloads import (
    build_ewf_cdfg,
    build_gcd_cdfg,
    ewf_reference,
    gcd_reference,
)


class TestGcd:
    def test_well_formed(self):
        check_well_formed(build_gcd_cdfg())

    @pytest.mark.parametrize("pair", [(84, 36), (36, 84), (7, 13), (100, 100)])
    def test_reference_model(self, pair):
        expected = gcd_reference(*pair)
        assert expected["A"] == expected["B"] == math.gcd(*pair)

    def test_branch_structure(self):
        cdfg = build_gcd_cdfg()
        assert cdfg.branch_of("A := A - B") == "then"
        assert cdfg.branch_of("B := B - A") == "else"

    def test_equal_operands_zero_iterations(self):
        expected = gcd_reference(5, 5)
        assert expected["C"] == 0.0


class TestEwf:
    def test_well_formed(self):
        check_well_formed(build_ewf_cdfg())

    def test_reference_converges(self):
        result = ewf_reference(n=50)
        # with decay < 1 and gains < 1 the filter state is bounded
        assert abs(result["Y"]) < 10
        assert result["I"] == 50

    def test_zero_steps(self):
        cdfg = build_ewf_cdfg(n=0)
        assert cdfg.initial_registers["C"] == 0.0

    def test_four_units(self):
        cdfg = build_ewf_cdfg()
        assert len(cdfg.functional_units()) == 4
