"""CdfgBuilder arc-derivation rules."""

import pytest

from repro.cdfg import ArcRole, CdfgBuilder, NodeKind, check_well_formed
from repro.errors import BlockStructureError


class TestStraightLine:
    def test_data_dependency(self):
        builder = CdfgBuilder("t")
        builder.op("A := B + C", fu="ALU")
        builder.op("D := A + B", fu="ALU")
        cdfg = builder.build()
        arc = cdfg.arc("A := B + C", "D := A + B")
        assert arc.has_role(ArcRole.DATA)
        assert "A" in arc.registers

    def test_register_allocation_anti_dependency(self):
        builder = CdfgBuilder("t")
        builder.op("X := A + B", fu="ALU1")
        builder.op("Y := A + X", fu="ALU2")  # reads old A... and new X
        builder.op("A := B + B", fu="ALU1")  # overwrites A
        cdfg = builder.build()
        arc = cdfg.arc("Y := A + X", "A := B + B")
        assert arc.has_role(ArcRole.REGISTER)
        assert "A" in arc.registers
        # the first statement also read the old A
        assert cdfg.arc("X := A + B", "A := B + B").has_role(ArcRole.REGISTER)

    def test_scheduling_chain_per_unit(self):
        builder = CdfgBuilder("t")
        builder.op("A := P + Q", fu="ALU")
        builder.op("B := P * Q", fu="MUL")
        builder.op("C := P - Q", fu="ALU")
        cdfg = builder.build()
        assert cdfg.arc("A := P + Q", "C := P - Q").has_role(ArcRole.SCHEDULING)
        assert not cdfg.has_arc("A := P + Q", "B := P * Q")

    def test_start_connects_only_sources(self):
        builder = CdfgBuilder("t")
        builder.op("A := B + C", fu="ALU")
        builder.op("D := A + B", fu="ALU")
        cdfg = builder.build()
        assert cdfg.has_arc("START", "A := B + C")
        assert not cdfg.has_arc("START", "D := A + B")

    def test_sinks_connect_to_end(self):
        builder = CdfgBuilder("t")
        builder.op("A := B + C", fu="ALU")
        builder.op("D := B + C", fu="MUL")
        cdfg = builder.build()
        assert cdfg.has_arc("A := B + C", "END")
        assert cdfg.has_arc("D := B + C", "END")

    def test_duplicate_statement_names_disambiguated(self):
        builder = CdfgBuilder("t")
        first = builder.op("A := A + B", fu="ALU")
        second = builder.op("A := A + B", fu="ALU")
        cdfg = builder.build()
        assert first != second
        assert cdfg.has_node(second)
        # second instance reads the first one's result
        assert cdfg.arc(first, second).has_role(ArcRole.DATA)

    def test_empty_program(self):
        cdfg = CdfgBuilder("t").build()
        assert cdfg.has_arc("START", "END")
        check_well_formed(cdfg)


class TestLoopConstruction:
    def test_loop_nodes_created(self):
        builder = CdfgBuilder("t")
        with builder.loop("C", fu="ALU") as root:
            builder.op("X := X + D", fu="ALU")
            builder.op("C := X < L", fu="ALU")
        cdfg = builder.build(initial={"X": 0, "C": 1})
        assert cdfg.node(root).kind is NodeKind.LOOP
        assert cdfg.has_arc("ENDLOOP", root)
        check_well_formed(cdfg)

    def test_loop_members_blocked(self):
        builder = CdfgBuilder("t")
        with builder.loop("C", fu="ALU") as root:
            builder.op("X := X + D", fu="ALU")
            builder.op("C := X < L", fu="ALU")
        cdfg = builder.build()
        assert cdfg.block_of("X := X + D") == root
        assert cdfg.block_of(root) is None

    def test_data_into_loop_routes_to_root(self):
        builder = CdfgBuilder("t")
        builder.op("K := P + Q", fu="ALU")
        with builder.loop("C", fu="ALU") as root:
            builder.op("X := X + K", fu="ALU")
            builder.op("C := X < L", fu="ALU")
        cdfg = builder.build()
        arc = cdfg.arc("K := P + Q", root)
        assert arc.has_role(ArcRole.DATA)
        assert "K" in arc.registers
        assert not cdfg.has_arc("K := P + Q", "X := X + K")

    def test_data_out_of_loop_routes_from_root(self):
        builder = CdfgBuilder("t")
        with builder.loop("C", fu="ALU") as root:
            builder.op("X := X + D", fu="ALU")
            builder.op("C := X < L", fu="ALU")
        builder.op("R := X + X", fu="ALU")
        cdfg = builder.build()
        arc = cdfg.arc(root, "R := X + X")
        assert arc.has_role(ArcRole.DATA)

    def test_mismatched_nesting_detected(self):
        builder = CdfgBuilder("t")
        context = builder.loop("C", fu="ALU")
        context.__enter__()
        builder._open.append([])  # simulate a stray block
        with pytest.raises(BlockStructureError):
            context.__exit__(None, None, None)

    def test_build_with_open_block_rejected(self):
        builder = CdfgBuilder("t")
        context = builder.loop("C", fu="ALU")
        context.__enter__()
        with pytest.raises(BlockStructureError):
            builder.build()


class TestIfConstruction:
    def _gcd_like(self):
        builder = CdfgBuilder("t")
        with builder.if_block("D", fu="SUB") as branch:
            builder.op("A := A - B", fu="SUB")
            with branch.otherwise():
                builder.op("B := B - A", fu="SUB")
        return builder.build(initial={"A": 4, "B": 2, "D": 1})

    def test_branches_annotated(self):
        cdfg = self._gcd_like()
        assert cdfg.branch_of("A := A - B") == "then"
        assert cdfg.branch_of("B := B - A") == "else"

    def test_decision_arc_exists(self):
        cdfg = self._gcd_like()
        assert cdfg.has_arc("IF", "ENDIF")

    def test_branch_entry_and_exit_arcs(self):
        cdfg = self._gcd_like()
        assert cdfg.has_arc("IF", "A := A - B")
        assert cdfg.has_arc("IF", "B := B - A")
        assert cdfg.has_arc("A := A - B", "ENDIF")
        assert cdfg.has_arc("B := B - A", "ENDIF")

    def test_well_formed(self):
        check_well_formed(self._gcd_like())

    def test_write_after_if_waits_for_endif(self):
        builder = CdfgBuilder("t")
        with builder.if_block("D", fu="ALU") as branch:
            builder.op("A := A - B", fu="ALU")
            with branch.otherwise():
                builder.op("B := B - A", fu="ALU")
        builder.op("R := A + B", fu="ALU")
        cdfg = builder.build()
        arc = cdfg.arc("ENDIF", "R := A + B")
        assert arc.has_role(ArcRole.DATA) or arc.has_role(ArcRole.SCHEDULING)


class TestInputs:
    def test_inputs_recorded(self):
        builder = CdfgBuilder("t")
        builder.input("k", 2.5)
        builder.op("A := B + k", fu="ALU")
        cdfg = builder.build(initial={"B": 1.0})
        assert cdfg.inputs["k"] == 2.5
        assert cdfg.initial_registers["B"] == 1.0


class TestBlockNaming:
    def test_custom_if_name_without_IF_gets_END_prefix(self):
        # regression: close names used to come from replace("IF", "ENDIF"),
        # a no-op for names like 'branch', so the close node collided with
        # the root and was disambiguated to 'branch #2'
        builder = CdfgBuilder("t")
        with builder.if_block("D", fu="ALU", name="branch"):
            builder.op("A := A + B", fu="ALU")
        cdfg = builder.build(initial={"A": 0.0, "B": 1.0, "D": 1.0})
        names = {node.name for node in cdfg.nodes()}
        assert "ENDbranch" in names
        assert "branch #2" not in names
        assert cdfg.node("ENDbranch").kind is NodeKind.ENDIF

    def test_custom_if_name_containing_IF_still_rewrites(self):
        builder = CdfgBuilder("t")
        with builder.if_block("D", fu="ALU", name="IFguard"):
            builder.op("A := A + B", fu="ALU")
        cdfg = builder.build(initial={"A": 0.0, "B": 1.0, "D": 1.0})
        assert cdfg.node("ENDIFguard").kind is NodeKind.ENDIF

    def test_custom_loop_name_without_LOOP_gets_END_prefix(self):
        builder = CdfgBuilder("t")
        with builder.loop("C", fu="ALU", name="spin"):
            builder.op("C := C - D", fu="ALU")
        cdfg = builder.build(initial={"C": 1.0, "D": 1.0})
        assert cdfg.node("ENDspin").kind is NodeKind.ENDLOOP


class TestFunctionalUnitAutoRegistration:
    def test_op_loop_and_if_block_all_auto_register(self):
        builder = CdfgBuilder("t")
        builder.op("A := A + B", fu="FU_OP")
        with builder.loop("C", fu="FU_LOOP"):
            builder.op("C := C - A", fu="FU_OP")
        with builder.if_block("D", fu="FU_IF"):
            builder.op("A := A + B", fu="FU_OP")
        cdfg = builder.build(initial={"A": 0.0, "B": 1.0, "C": 0.0, "D": 0.0})
        assert set(cdfg.functional_units()) == {"FU_OP", "FU_LOOP", "FU_IF"}

    def test_explicit_declaration_keeps_its_description(self):
        builder = CdfgBuilder("t")
        unit = builder.functional_unit("ALU", description="adder")
        builder.op("A := A + B", fu="ALU")
        assert unit.description == "adder"
        assert builder._fus["ALU"] is unit
