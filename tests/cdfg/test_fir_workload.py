"""FIR generator: construction, semantics and scaling."""

import pytest

from repro.cdfg import check_well_formed
from repro.sim import simulate_tokens
from repro.workloads import build_fir_cdfg, fir_reference
from repro.workloads.fir import default_coefficients


class TestConstruction:
    @pytest.mark.parametrize("taps", [2, 3, 4, 8])
    def test_well_formed(self, taps):
        check_well_formed(build_fir_cdfg(taps=taps))

    def test_node_count_scales_linearly(self):
        small = build_fir_cdfg(taps=3)
        large = build_fir_cdfg(taps=9)
        # per tap: one product, ~one accumulation, ~one shift
        assert len(large) - len(small) == 3 * 6

    def test_validation_of_parameters(self):
        with pytest.raises(ValueError):
            build_fir_cdfg(taps=1)
        with pytest.raises(ValueError):
            build_fir_cdfg(taps=4, samples=0)
        with pytest.raises(ValueError):
            build_fir_cdfg(taps=4, coefficients=[1.0])

    def test_default_coefficients_symmetric(self):
        coefficients = default_coefficients(5)
        assert coefficients == coefficients[::-1]


class TestSemantics:
    @pytest.mark.parametrize("taps,samples", [(2, 3), (4, 6), (5, 4)])
    def test_token_sim_matches_reference(self, taps, samples):
        cdfg = build_fir_cdfg(taps=taps, samples=samples)
        expected = fir_reference(taps=taps, samples=samples)
        for seed in (None, 0, 7):
            result = simulate_tokens(cdfg, seed=seed)
            for register, value in expected.items():
                assert result.registers[register] == value, (seed, register)

    def test_impulse_response_is_coefficients(self):
        """With a unit impulse (decay 0), y_n walks the coefficients."""
        coefficients = [0.5, 0.25, 0.125]
        final = fir_reference(
            taps=3, samples=3, coefficients=coefficients, x0=1.0, decay=0.0
        )
        # after 3 samples the impulse sits at the last tap
        assert final["Y"] == pytest.approx(coefficients[2])


class TestFullFlow:
    @pytest.mark.parametrize("taps", [3, 5])
    def test_synthesized_fir_computes_correctly(self, taps):
        from repro import synthesize
        from repro.sim.system import simulate_system

        cdfg = build_fir_cdfg(taps=taps, samples=4)
        design = synthesize(cdfg)
        expected = fir_reference(taps=taps, samples=4)
        result = simulate_system(design, seed=1)
        for register, value in expected.items():
            assert result.registers[register] == value, register
        assert not result.hazards

    def test_channels_grow_slower_than_constraints(self):
        """GT5 cannot keep the FIR wire count flat (each accumulation's
        loop-carried done needs its own pre-enabled wire), but channels
        must grow far slower than the constraint-arc population."""
        from repro.transforms import optimize_global

        small = optimize_global(build_fir_cdfg(taps=3))
        large = optimize_global(build_fir_cdfg(taps=9))
        small_channels = small.plan.count(include_env=False)
        large_channels = large.plan.count(include_env=False)
        assert large_channels < len(large.cdfg.inter_fu_arcs())
        arc_growth = len(large.cdfg.inter_fu_arcs()) - len(small.cdfg.inter_fu_arcs())
        channel_growth = large_channels - small_channels
        assert channel_growth < 0.8 * arc_growth
