"""The DIFFEQ CDFG reconstruction must reproduce every fact the paper
states in prose about Figures 1 and 3-6.  These tests pin the
reconstruction to the paper.
"""

import pytest

from repro.cdfg import ArcRole, check_well_formed
from repro.cdfg.graph import ENV
from repro.channels import derive_channels
from repro.workloads.diffeq import (
    DIFFEQ_FUS,
    N_A,
    N_B,
    N_C,
    N_ENDLOOP,
    N_LOOP,
    N_M1A,
    N_M1B,
    N_M2,
    N_U,
    N_X,
    N_X1,
    N_Y,
    build_diffeq_cdfg,
)


class TestStructure:
    def test_well_formed(self, diffeq):
        check_well_formed(diffeq)

    def test_four_functional_units(self, diffeq):
        assert set(diffeq.functional_units()) == set(DIFFEQ_FUS)

    def test_bindings_match_paper_columns(self, diffeq):
        assert diffeq.fu_schedule("ALU1") == [N_B, N_A, N_U]
        assert diffeq.fu_schedule("MUL1") == [N_M1A, N_M1B]
        assert diffeq.fu_schedule("MUL2") == [N_M2]
        # "the LOOP and ENDLOOP nodes are both bound to ALU2"
        assert diffeq.fu_schedule("ALU2") == [N_LOOP, N_X, N_Y, N_X1, N_C, N_ENDLOOP]

    def test_start_end_unbound(self, diffeq):
        assert diffeq.start.fu is None
        assert diffeq.end.fu is None

    def test_loop_examines_c(self, diffeq):
        assert diffeq.node(N_LOOP).condition == "C"

    def test_b_is_outside_the_loop(self, diffeq):
        # "(LOOP, A := Y + M1) is a control arc" implies A is ALU1's
        # first in-loop node, so B := dx2 + dx precedes the loop
        assert diffeq.block_of(N_B) is None
        assert diffeq.block_of(N_A) == N_LOOP


class TestPaperNamedArcs:
    """Arcs the paper names explicitly (Section 2.1 example, arcs 1-14)."""

    def test_control_arc_loop_to_a(self, diffeq):
        assert diffeq.arc(N_LOOP, N_A).has_role(ArcRole.CONTROL)

    def test_scheduling_arc_a_to_u(self, diffeq):
        assert diffeq.arc(N_A, N_U).has_role(ArcRole.SCHEDULING)

    def test_data_arcs_around_a(self, diffeq):
        assert diffeq.arc(N_M1A, N_A).has_role(ArcRole.DATA)
        assert diffeq.arc(N_A, N_M1B).has_role(ArcRole.DATA)

    def test_dual_role_arc(self, diffeq):
        # "(M1 := U * X1, U := U - M1) is a register allocation
        # constraint arc with respect to U" -- and the paper also notes
        # arcs of this shape can be data arcs w.r.t. another register.
        arc = diffeq.arc(N_M1A, N_U)
        assert arc.has_role(ArcRole.REGISTER)
        assert "U" in arc.registers

    def test_arc5_dominated_by_6_and_7(self, diffeq):
        # arc 5 = (M1:=U*X1, U:=U-M1), implied by 6 = (M1:=U*X1, A) and
        # 7 = (A, U:=U-M1)
        assert diffeq.implies(N_M1A, N_U, exclude_arc=(N_M1A, N_U))

    def test_endloop_sync_arcs_1_to_4(self, diffeq):
        assert diffeq.has_arc(N_U, N_ENDLOOP)  # arc 1 (ALU1)
        assert diffeq.has_arc(N_M1B, N_ENDLOOP)  # arc 2 (MUL1)
        assert diffeq.has_arc(N_M2, N_ENDLOOP)  # arc 3 (MUL2)
        arc4 = diffeq.arc(N_C, N_ENDLOOP)  # arc 4: FU scheduling arc
        assert arc4.has_role(ArcRole.SCHEDULING)

    def test_gt3_arcs_10_and_11(self, diffeq):
        assert diffeq.arc(N_M2, N_U).has_role(ArcRole.REGISTER)  # arc 10
        assert diffeq.arc(N_M1B, N_U).has_role(ArcRole.DATA)  # arc 11

    def test_loop_body_entry_arcs(self, diffeq):
        for first in (N_A, N_M1A, N_M2, N_X):
            assert diffeq.has_arc(N_LOOP, first)

    def test_candidate_loop_variable_arc_is_implied(self, diffeq):
        # GT1 step C finds (C := X < a, ENDLOOP) already enforced: the
        # write of the loop variable reaches ENDLOOP through existing
        # constraints (here the FU scheduling arc 4 itself), so step C
        # adds nothing -- asserted end-to-end in the GT1 tests.
        assert diffeq.implies(N_C, N_ENDLOOP)


class TestChannelCount:
    def test_seventeen_unoptimized_channels(self, diffeq):
        """Figure 12, row 'unoptimized': 17 communication channels."""
        plan = derive_channels(diffeq)
        assert plan.count() == 17

    def test_fifteen_controller_controller_channels(self, diffeq):
        plan = derive_channels(diffeq)
        assert plan.count(include_env=False) == 15

    def test_every_channel_single_arc_single_receiver(self, diffeq):
        plan = derive_channels(diffeq)
        for channel in plan.channels:
            assert len(channel.arcs) == 1
            assert not channel.is_multiway


class TestParameters:
    def test_custom_parameters(self):
        cdfg = build_diffeq_cdfg({"dx": 0.25, "a": 2.0})
        assert cdfg.inputs["dx"] == 0.25
        assert cdfg.inputs["dx2"] == 0.5
        assert cdfg.inputs["a"] == 2.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            build_diffeq_cdfg({"bogus": 1.0})

    def test_initial_condition_register(self):
        cdfg = build_diffeq_cdfg({"x0": 5.0, "a": 1.0})
        assert cdfg.initial_registers["C"] == 0.0  # loop never entered
