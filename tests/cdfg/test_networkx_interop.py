"""NetworkX export."""

import networkx as nx

from repro.cdfg import NodeKind


class TestToNetworkx:
    def test_structure_preserved(self, diffeq):
        graph = diffeq.to_networkx()
        assert graph.number_of_nodes() == len(diffeq)
        assert graph.number_of_edges() == diffeq.arc_count()

    def test_attributes(self, diffeq):
        graph = diffeq.to_networkx()
        assert graph.nodes["LOOP"]["kind"] == "loop"
        assert graph.nodes["A := Y + M1"]["fu"] == "ALU1"
        edge = graph.edges["M1 := U * X1", "A := Y + M1"]
        assert "data" in edge["roles"]
        assert edge["registers"] == ["M1"]

    def test_loop_cycle_visible(self, diffeq):
        graph = diffeq.to_networkx()
        cycles = list(nx.simple_cycles(graph))
        assert cycles  # the LOOP..ENDLOOP iterate structure

    def test_forward_subgraph_is_dag(self, diffeq):
        graph = diffeq.to_networkx()
        forward = nx.DiGraph(
            (u, v)
            for u, v, data in graph.edges(data=True)
            if not data["backward"]
            and not (
                graph.nodes[u]["kind"] == "endloop" and graph.nodes[v]["kind"] == "loop"
            )
        )
        assert nx.is_directed_acyclic_graph(forward)

    def test_longest_path_ends_at_end(self, diffeq):
        graph = diffeq.to_networkx()
        forward = nx.DiGraph(
            (u, v)
            for u, v, data in graph.edges(data=True)
            if not data["backward"]
            and not (
                graph.nodes[u]["kind"] == "endloop" and graph.nodes[v]["kind"] == "loop"
            )
        )
        path = nx.dag_longest_path(forward)
        assert path[0] == "START"
        # the deepest chain threads the whole loop body to its close
        assert path[-1] in ("END", "ENDLOOP")
