"""Property-based fuzzing of the Python-subset frontend.

Random subset programs (generated terminating-by-construction by
:func:`tests.strategies.frontend_programs`) must survive the whole
chain: compile → well-formed CDFG → token simulation matching the
golden interpreter bit-for-bit → full GT/LT flow proof.  Nothing in
the chain may raise — a frontend that emits an ill-formed or
semantically wrong CDFG for *any* subset program is broken.
"""

import itertools

from hypothesis import HealthCheck, given, settings

from repro.cdfg.validate import check_well_formed
from repro.frontend import compile_kernel, register_kernel, unregister_kernel
from repro.sim import simulate_tokens
from repro.sim.seeding import NOMINAL
from tests.strategies import frontend_programs

#: unique registry names across examples (prove runs need registration)
_counter = itertools.count()


class TestFrontendCompileProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(frontend_programs())
    def test_compile_is_well_formed_and_matches_golden(self, program):
        source, bounds = program
        kernel = compile_kernel(source, bounds=bounds)
        cdfg = kernel.build()
        check_well_formed(cdfg)
        golden = kernel.golden()
        for seed in (NOMINAL, 0):
            result = simulate_tokens(cdfg, seed=seed)
            for name, value in golden.items():
                assert result.registers[name] == value, (seed, name)

    @settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(frontend_programs())
    def test_compiled_designs_prove(self, program):
        from repro.verify.flow import prove_workload

        source, bounds = program
        kernel = compile_kernel(source, bounds=bounds)
        name = register_kernel(kernel, name=f"_fuzzed_{next(_counter)}")
        try:
            report = prove_workload(name)
            assert report.proved, report.summary()
        finally:
            unregister_kernel(name)
