"""Property tests over workload parameters: full pipeline correctness.

Randomized problem parameters are pushed through the entire flow
(builder -> GT script -> extraction -> LT script -> system sim) and the
final register files are compared with the golden models.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.afsm import extract_controllers
from repro.local_transforms import optimize_local
from repro.sim import simulate_tokens
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.workloads import (
    build_diffeq_cdfg,
    build_gcd_cdfg,
    diffeq_reference,
    gcd_reference,
)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    dx=st.sampled_from([0.0625, 0.125, 0.25, 0.5]),
    a=st.sampled_from([0.5, 1.0, 1.5]),
    y0=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    u0=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
)
def test_diffeq_full_pipeline_any_parameters(dx, a, y0, u0):
    cdfg = build_diffeq_cdfg({"dx": dx, "a": a, "y0": y0, "u0": u0})
    expected = diffeq_reference(dx=dx, a=a, y0=y0, u0=u0)

    token = simulate_tokens(cdfg, seed=0)
    for register, value in expected.items():
        assert token.registers[register] == value

    optimized = optimize_global(cdfg)
    design = optimize_local(
        extract_controllers(optimized.cdfg, optimized.plan)
    ).design
    system = simulate_system(design, seed=0)
    for register, value in expected.items():
        assert system.registers[register] == value


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    a0=st.integers(min_value=1, max_value=300),
    b0=st.integers(min_value=1, max_value=300),
)
def test_gcd_full_pipeline_any_operands(a0, b0):
    cdfg = build_gcd_cdfg(a0, b0)
    expected = gcd_reference(a0, b0)

    optimized = optimize_global(cdfg)
    design = optimize_local(
        extract_controllers(optimized.cdfg, optimized.plan)
    ).design
    system = simulate_system(design, seed=1)
    for register, value in expected.items():
        assert system.registers[register] == value
    import math

    assert system.registers["A"] == math.gcd(a0, b0)
