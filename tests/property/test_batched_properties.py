"""Property-based bit-exactness of the batched max-plus engine.

The engine's whole contract is *bit-for-bit* agreement with the scalar
token simulator for every sample it does not flag as suspect.  These
properties fuzz that contract from three directions: randomly generated
structured CDFGs, random seeds on the real workloads (base and fully
transformed), and random :class:`~repro.resilience.faults.FaultPlan`
batches against faulted scalar runs.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.sim import NOMINAL, simulate_tokens
from repro.sim.batched import BatchedTokenEngine, UnbatchableDesignError
from repro.timing import DelayModel
from repro.transforms import optimize_global
from repro.workloads import build_workload

from tests.strategies import build_program, fault_plans, programs

WORKLOADS = ("diffeq", "gcd", "ewf", "fir")


def _engine_or_skip(cdfg, base, plan=None):
    try:
        return BatchedTokenEngine(cdfg, delay_model=base, channel_plan=plan)
    except UnbatchableDesignError:
        # nominally-unsafe designs are outside the engine's contract by
        # construction; the campaign layer falls back to scalar for them
        assume(False)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=4))
def test_fuzzed_cdfg_seeded_batch_matches_scalar(program, seeds):
    cdfg = build_program(program)
    base = DelayModel()
    engine = _engine_or_skip(cdfg, base)
    batch = engine.run_seeded(seeds, spot_check=0.0)
    for index, seed in enumerate(seeds):
        scalar = simulate_tokens(cdfg, delay_model=base, seed=seed, strict=False)
        if batch.suspect[index] or scalar.violations:
            continue  # flagged samples take the scalar verdict anyway
        assert float(batch.makespans[index]) == scalar.end_time


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(WORKLOADS),
    st.booleans(),
    st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=3),
)
def test_workload_seeded_batch_matches_scalar(workload, optimize, seeds):
    base = DelayModel()
    cdfg = build_workload(workload)
    plan = None
    if optimize:
        optimized = optimize_global(cdfg, delays=base)
        cdfg, plan = optimized.cdfg, optimized.plan
    engine = BatchedTokenEngine(cdfg, delay_model=base, channel_plan=plan)
    batch = engine.run_seeded(seeds, spot_check=0.0)
    for index, seed in enumerate(seeds):
        scalar = simulate_tokens(
            cdfg, delay_model=base, seed=seed, strict=False, channel_plan=plan
        )
        if batch.suspect[index] or scalar.violations:
            continue
        assert float(batch.makespans[index]) == scalar.end_time


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(WORKLOADS), st.data())
def test_faulted_batch_matches_faulted_scalar(workload, data):
    base = DelayModel()
    optimized = optimize_global(build_workload(workload), delays=base)
    engine = _engine_or_skip(optimized.cdfg, base, optimized.plan)
    plans = [data.draw(fault_plans(workload), label=f"plan{i}") for i in range(3)]
    batch = engine.run_plans(plans, spot_check=0.0)
    for index, plan in enumerate(plans):
        scalar = simulate_tokens(
            optimized.cdfg,
            delay_model=plan.apply(base),
            seed=NOMINAL,
            strict=False,
            channel_plan=optimized.plan,
        )
        if batch.suspect[index] or scalar.violations:
            continue
        assert float(batch.makespans[index]) == scalar.end_time
