"""Property-based tests for the cube algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Cover, Cube, DASH

WIDTH = 5

values = st.sampled_from([0, 1, DASH])
cubes = st.builds(Cube, st.tuples(*([values] * WIDTH)))
points = st.tuples(*([st.sampled_from([0, 1])] * WIDTH))


class TestRelationLaws:
    @given(cubes, cubes)
    def test_intersects_symmetric(self, left, right):
        assert left.intersects(right) == right.intersects(left)

    @given(cubes, cubes)
    def test_intersection_contained_in_both(self, left, right):
        shared = left.intersection(right)
        if shared is not None:
            assert left.contains(shared)
            assert right.contains(shared)

    @given(cubes, cubes)
    def test_supercube_contains_both(self, left, right):
        union = left.supercube(right)
        assert union.contains(left)
        assert union.contains(right)

    @given(cubes, cubes, points)
    def test_containment_pointwise(self, left, right, point):
        if left.contains(right) and right.contains_point(point):
            assert left.contains_point(point)

    @given(cubes, points)
    def test_minterm_membership_consistent(self, cube, point):
        assert cube.contains_point(point) == (point in set(cube.minterms()))


class TestSharpLaws:
    @given(cubes, cubes)
    def test_sharp_is_set_difference(self, left, right):
        pieces = left.sharp(right)
        left_points = set(left.minterms())
        right_points = set(right.minterms())
        piece_points = set()
        for piece in pieces:
            piece_points |= set(piece.minterms())
        assert piece_points == left_points - right_points

    @given(cubes, cubes)
    def test_sharp_pieces_disjoint(self, left, right):
        pieces = left.sharp(right)
        seen = set()
        for piece in pieces:
            piece_points = set(piece.minterms())
            assert not (piece_points & seen)
            seen |= piece_points


class TestCoverLaws:
    @given(st.lists(cubes, max_size=4), cubes)
    def test_contains_cube_matches_pointwise(self, members, candidate):
        cover = Cover(members)
        expected = all(
            cover.contains_point(point) for point in candidate.minterms()
        )
        assert cover.contains_cube(candidate) == expected

    @given(st.lists(cubes, max_size=5))
    def test_drop_contained_preserves_semantics(self, members):
        cover = Cover(members)
        slim = cover.drop_contained()
        for point_source in members:
            for point in point_source.minterms():
                assert slim.contains_point(point)
