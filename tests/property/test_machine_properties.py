"""Property tests over the local-transform pipeline.

Random subsets of LT1..LT5 applied in random (canonicalized) order to
every controller must keep the machines valid and the system correct.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.afsm import extract_controllers
from repro.afsm.validate import check_machine
from repro.local_transforms import optimize_local
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.sim.system import simulate_system
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg, diffeq_reference

_GT_DESIGN = None


def _design():
    global _GT_DESIGN
    if _GT_DESIGN is None:
        cdfg = build_diffeq_cdfg()
        optimized = optimize_global(cdfg)
        _GT_DESIGN = extract_controllers(optimized.cdfg, optimized.plan)
    return _GT_DESIGN


@settings(max_examples=16, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    subset=st.sets(st.sampled_from(STANDARD_LOCAL_SEQUENCE)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_any_lt_subset_keeps_design_correct(subset, seed):
    design = _design()
    result = optimize_local(design, enabled=tuple(subset))
    for controller in result.design.controllers.values():
        check_machine(controller.machine)
    sim = simulate_system(result.design, seed=seed)
    expected = diffeq_reference()
    for register, value in expected.items():
        assert sim.registers[register] == value
    assert not sim.hazards
    assert not sim.violations


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(subset=st.sets(st.sampled_from(STANDARD_LOCAL_SEQUENCE), min_size=1))
def test_lt_subsets_never_grow_machines(subset):
    design = _design()
    result = optimize_local(design, enabled=tuple(subset))
    for fu, controller in design.controllers.items():
        optimized = result.design.controllers[fu]
        assert optimized.state_count <= controller.state_count
        assert optimized.transition_count <= controller.transition_count
