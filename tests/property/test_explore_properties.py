"""Property tests for the exploration result machinery.

The sort-based skyline filter in
:meth:`repro.explore.ExplorationResult.pareto_points` must agree with
the naive all-pairs dominance scan on any point set — including
duplicates, total orders, and anti-chains.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import DesignPoint, ExplorationResult


def _point(index: int, objectives) -> DesignPoint:
    channels, states, makespan = objectives
    return DesignPoint(
        global_transforms=(f"GT{index}",),
        local_transforms=(),
        channels=channels,
        total_states=states,
        total_transitions=states,
        makespan=float(makespan),
    )


objective_triples = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)


class TestParetoSkyline:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(objective_triples, max_size=40))
    def test_matches_naive_scan(self, triples):
        result = ExplorationResult(
            points=[_point(i, t) for i, t in enumerate(triples)]
        )
        naive = [
            point
            for point in result.points
            if not any(other.dominates(point) for other in result.points)
        ]
        assert result.pareto_points() == naive

    @settings(max_examples=100, deadline=None)
    @given(st.lists(objective_triples, min_size=1, max_size=40))
    def test_frontier_is_nonempty_and_undominated(self, triples):
        result = ExplorationResult(points=[_point(i, t) for i, t in enumerate(triples)])
        frontier = result.pareto_points()
        assert frontier
        for point in frontier:
            assert not any(other.dominates(point) for other in result.points)
