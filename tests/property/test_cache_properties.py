"""Cache-correctness properties.

The analysis caches (memoized :class:`UnfoldedReach` instances with
bitset reachability closures, :class:`DelayModel` interval memoization,
anchored longest-path tables) must be pure accelerations: a cached run
and a cache-disabled run over the same CDFG must produce *identical*
designs.  These tests prove that on random structured programs, and
check explicitly that graph mutation invalidates cached answers (the
generation bump).
"""

from hypothesis import HealthCheck, given, settings

from repro import perf
from repro.afsm.extract import extract_controllers
from repro.errors import ExtractionError
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg

from tests.strategies import build_program as _build, programs


def _synthesis_fingerprint(cdfg):
    """Everything the ISSUE's correctness bar cares about: transform
    reports, the channel plan, and controller state/transition counts.

    Some random programs hit configurations extraction does not
    support; that must happen identically with and without caching, so
    the raised error becomes part of the fingerprint.
    """
    try:
        return _fingerprint_or_raise(cdfg)
    except ExtractionError as error:
        return ("extraction-unsupported", str(error))


def _fingerprint_or_raise(cdfg):
    optimized = optimize_global(cdfg)
    reports = [
        (r.name, r.applied, tuple(r.removed_arcs), tuple(r.added_arcs),
         tuple(r.merged_nodes))
        for r in optimized.reports
    ]
    plan = tuple(
        (channel.name, channel.src_fu, tuple(sorted(channel.dst_fus)),
         tuple(channel.arcs))
        for channel in optimized.plan.channels
    )
    design = extract_controllers(optimized.cdfg, optimized.plan)
    controllers = tuple(
        (fu, controller.machine.state_count, controller.machine.transition_count)
        for fu, controller in sorted(design.controllers.items())
    )
    return (reports, plan, controllers)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_cached_and_uncached_designs_identical(program):
    cached = _synthesis_fingerprint(_build(program))
    with perf.caching_disabled():
        uncached = _synthesis_fingerprint(_build(program))
    assert cached == uncached


def test_mutation_invalidates_cached_reachability():
    """A cached reachability answer must not survive a graph mutation."""
    from repro.cdfg.arc import Arc, control_tag
    from repro.transforms.unfold import cached_unfolded_reach

    cdfg = build_diffeq_cdfg()
    reach = cached_unfolded_reach(cdfg, unfold=2)
    assert cached_unfolded_reach(cdfg, unfold=2) is reach  # memoized

    # two operations on different units with no direct constraint
    names = [node.name for node in cdfg.operation_nodes()]
    src, dst = None, None
    for a in names:
        for b in names:
            if a != b and not cdfg.has_arc(a, b) and not reach.implies_same_iteration(a, b):
                src, dst = a, b
                break
        if src:
            break
    assert src and dst, "expected an unordered operation pair in DIFFEQ"

    generation = cdfg.generation
    cdfg.add_arc(Arc(src, dst, frozenset({control_tag()})))
    assert cdfg.generation > generation
    fresh = cached_unfolded_reach(cdfg, unfold=2)
    assert fresh is not reach  # cache was dropped
    assert fresh.implies_same_iteration(src, dst)  # and sees the new arc


def test_generation_bumps_on_every_mutation_kind():
    from repro.cdfg.arc import Arc, control_tag

    cdfg = build_diffeq_cdfg()
    ops = [node.name for node in cdfg.operation_nodes()]
    start = cdfg.generation

    arc = Arc(ops[0], ops[1], frozenset({control_tag()}))
    cdfg.add_arc(arc)
    after_add = cdfg.generation
    assert after_add > start

    cdfg.remove_arc(ops[0], ops[1])
    assert cdfg.generation > after_add

    # copies start with a fresh cache and their own counter
    clone = cdfg.copy()
    assert clone.generation == 0
    assert clone.analysis_cache() == {}


def test_cached_unfolded_reach_respects_disable_switch():
    from repro.transforms.unfold import cached_unfolded_reach

    cdfg = build_diffeq_cdfg()
    cached = cached_unfolded_reach(cdfg, unfold=2)
    with perf.caching_disabled():
        bypassed = cached_unfolded_reach(cdfg, unfold=2)
        assert bypassed is not cached
    assert cached_unfolded_reach(cdfg, unfold=2) is cached
