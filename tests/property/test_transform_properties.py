"""Property-based checks over randomly generated CDFG programs.

A random structured program (straight-line ops, one optional loop,
random binding onto 2-3 units) is built, the full transform script is
applied, and the invariants of the paper's framework are asserted:
well-formedness, semantic equivalence under random delays, and channel
monotonicity.  The program generator lives in :mod:`tests.strategies`
so the verify tests can reuse it.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdfg import check_well_formed
from repro.channels import derive_channels
from repro.sim import NOMINAL, simulate_tokens
from repro.transforms import optimize_global

from tests.strategies import build_program, programs


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_transform_script_preserves_semantics(program):
    cdfg = build_program(program)
    check_well_formed(cdfg)
    baseline = simulate_tokens(cdfg, seed=0)

    optimized = optimize_global(cdfg)
    check_well_formed(optimized.cdfg)
    for seed in (0, 1):
        result = simulate_tokens(optimized.cdfg, seed=seed)
        assert result.registers == baseline.registers
        assert result.violations == []


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_channels_never_increase(program):
    cdfg = build_program(program)
    before = derive_channels(cdfg).count(include_env=False)
    optimized = optimize_global(cdfg)
    assert optimized.plan.count(include_env=False) <= before


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(min_value=0, max_value=1000))
def test_token_simulation_delay_insensitive(program, seed):
    """Final register files are independent of delay assignments."""
    cdfg = build_program(program)
    nominal = simulate_tokens(cdfg, seed=NOMINAL)
    random_delays = simulate_tokens(cdfg, seed=seed)
    assert nominal.registers == random_delays.registers
