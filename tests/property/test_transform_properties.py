"""Property-based checks over randomly generated CDFG programs.

A random structured program (straight-line ops, one optional loop,
random binding onto 2-3 units) is built, the full transform script is
applied, and the invariants of the paper's framework are asserted:
well-formedness, semantic equivalence under random delays, and channel
monotonicity.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdfg import CdfgBuilder, check_well_formed
from repro.channels import derive_channels
from repro.sim import simulate_tokens
from repro.transforms import optimize_global

UNITS = ("FU_A", "FU_B", "FU_C")
REGISTERS = ("R0", "R1", "R2", "R3")
OPERATORS = ("+", "-", "*")


@st.composite
def programs(draw):
    """(pre-ops, body-ops, iterations) with data-dependency-safe reads."""
    op_strategy = st.tuples(
        st.sampled_from(REGISTERS),
        st.sampled_from(REGISTERS),
        st.sampled_from(OPERATORS),
        st.sampled_from(REGISTERS),
        st.sampled_from(UNITS),
    )
    pre = draw(st.lists(op_strategy, min_size=0, max_size=3))
    body = draw(st.lists(op_strategy, min_size=1, max_size=5))
    iterations = draw(st.integers(min_value=0, max_value=4))
    return pre, body, iterations


def _build(program):
    pre, body, iterations = program
    builder = CdfgBuilder("random")
    builder.input("one", 1.0)
    builder.input("limit", float(iterations))
    for index, (dest, left, operator, right, fu) in enumerate(pre):
        builder.op(f"{dest} := {left} {operator} {right}", fu=fu, name=f"pre{index}")
    with builder.loop("C", fu="CNT"):
        for index, (dest, left, operator, right, fu) in enumerate(body):
            builder.op(f"{dest} := {left} {operator} {right}", fu=fu, name=f"body{index}")
        builder.op("I := I + one", fu="CNT")
        builder.op("C := I < limit", fu="CNT")
    initial = {reg: float(i + 1) for i, reg in enumerate(REGISTERS)}
    initial["I"] = 0.0
    initial["C"] = 1.0 if iterations > 0 else 0.0
    return builder.build(initial=initial)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_transform_script_preserves_semantics(program):
    cdfg = _build(program)
    check_well_formed(cdfg)
    baseline = simulate_tokens(cdfg, seed=0)

    optimized = optimize_global(cdfg)
    check_well_formed(optimized.cdfg)
    for seed in (0, 1):
        result = simulate_tokens(optimized.cdfg, seed=seed)
        assert result.registers == baseline.registers
        assert result.violations == []


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_channels_never_increase(program):
    cdfg = _build(program)
    before = derive_channels(cdfg).count(include_env=False)
    optimized = optimize_global(cdfg)
    assert optimized.plan.count(include_env=False) <= before


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(min_value=0, max_value=1000))
def test_token_simulation_delay_insensitive(program, seed):
    """Final register files are independent of delay assignments."""
    cdfg = _build(program)
    nominal = simulate_tokens(cdfg)
    random_delays = simulate_tokens(cdfg, seed=seed)
    assert nominal.registers == random_delays.registers
