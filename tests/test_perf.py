"""The profiling hooks and cache switch in :mod:`repro.perf`."""

import pytest

from repro import perf, synthesize
from repro.local_transforms import optimize_local
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg


@pytest.fixture(autouse=True)
def _clean_registry():
    perf.reset_timings()
    yield
    perf.reset_timings()


class TestTimedSections:
    def test_accumulates_calls_and_time(self):
        for __ in range(3):
            with perf.timed_section("unit-test"):
                pass
        stat = perf.section_timings()["unit-test"]
        assert stat.calls == 3
        assert stat.total >= 0.0
        assert stat.mean == pytest.approx(stat.total / 3)

    def test_records_even_on_exception(self):
        with pytest.raises(RuntimeError):
            with perf.timed_section("explodes"):
                raise RuntimeError("boom")
        assert perf.section_timings()["explodes"].calls == 1

    def test_reset_clears(self):
        perf.record_duration("something", 0.5)
        perf.reset_timings()
        assert perf.section_timings() == {}

    def test_format_timings_empty_and_nonempty(self):
        assert "no timed sections" in perf.format_timings()
        perf.record_duration("alpha", 0.25)
        table = perf.format_timings()
        assert "alpha" in table and "calls" in table


class TestCacheSwitch:
    def test_default_enabled(self):
        assert perf.caching_enabled()

    def test_context_manager_restores(self):
        with perf.caching_disabled():
            assert not perf.caching_enabled()
            with perf.caching_disabled():
                assert not perf.caching_enabled()
            assert not perf.caching_enabled()
        assert perf.caching_enabled()

    def test_set_caching_returns_previous(self):
        assert perf.set_caching(False) is True
        assert perf.set_caching(True) is False


class TestPerPassTimings:
    def test_global_passes_report_duration(self):
        result = optimize_global(build_diffeq_cdfg())
        assert all(report.duration >= 0.0 for report in result.reports)
        sections = perf.section_timings()
        for name in ("global/GT1", "global/GT5", "global/check_well_formed"):
            assert sections[name].calls >= 1

    def test_local_passes_report_duration(self):
        design = synthesize(build_diffeq_cdfg(), local_transforms=())
        result = optimize_local(design)
        assert result.reports
        assert all(report.duration >= 0.0 for report in result.reports)
        assert perf.section_timings()["local/LT4"].calls >= 1

    def test_duration_in_summary(self):
        result = optimize_global(build_diffeq_cdfg())
        report = result.reports[0]
        report.duration = 0.123
        assert "[0.123s]" in report.summary()
