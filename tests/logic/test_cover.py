"""Cover operations."""

from repro.logic import Cover, Cube


class TestContainment:
    def test_single_cube(self):
        cover = Cover([Cube.from_string("1--")])
        assert cover.contains_cube(Cube.from_string("10-"))
        assert not cover.contains_cube(Cube.from_string("0--"))

    def test_union_containment(self):
        """A cube split across members (no single member contains it)."""
        cover = Cover([Cube.from_string("1-"), Cube.from_string("01")])
        assert cover.contains_cube(Cube.from_string("-1"))
        assert not cover.contains_cube(Cube.from_string("--"))

    def test_point_membership(self):
        cover = Cover([Cube.from_string("1-0")])
        assert cover.contains_point((1, 0, 0))
        assert not cover.contains_point((0, 0, 0))

    def test_empty_cover(self):
        cover = Cover()
        assert not cover.contains_cube(Cube.from_string("1"))
        assert str(cover) == "0"


class TestMaintenance:
    def test_drop_contained(self):
        cover = Cover(
            [Cube.from_string("1--"), Cube.from_string("10-"), Cube.from_string("0--")]
        )
        slim = cover.drop_contained()
        assert len(slim) == 2
        assert Cube.from_string("10-") not in slim.cubes

    def test_drop_contained_dedups(self):
        cover = Cover([Cube.from_string("1-"), Cube.from_string("1-")])
        assert len(cover.drop_contained()) == 1

    def test_literal_count(self):
        cover = Cover([Cube.from_string("1-0"), Cube.from_string("111")])
        assert cover.literal_count() == 5

    def test_intersects_cube(self):
        cover = Cover([Cube.from_string("11-")])
        assert cover.intersects_cube(Cube.from_string("1--"))
        assert not cover.intersects_cube(Cube.from_string("0--"))
