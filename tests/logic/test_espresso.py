"""Minimizer behaviour with and without hazard constraints."""

from repro.logic import Cover, Cube
from repro.logic.espresso import expand_cube, irredundant, minimize, repair_privileged
from repro.logic.hazards import PrivilegedCube, RequiredCube


class TestExpand:
    def test_expands_into_dont_care_space(self):
        off = Cover([Cube.from_string("00")])
        grown = expand_cube(Cube.from_string("11"), off, [])
        # 11 can grow to 1- or -1 (both avoid 00); either is maximal
        assert grown.literal_count == 1
        assert not off.intersects_cube(grown)

    def test_blocked_by_off_set(self):
        off = Cover([Cube.from_string("10"), Cube.from_string("01")])
        grown = expand_cube(Cube.from_string("11"), off, [])
        assert grown == Cube.from_string("11")

    def test_respects_privileged(self):
        # transition cube --, start point 0-: products intersecting it
        # must contain 0-
        priv = PrivilegedCube(Cube.from_string("--"), Cube.from_string("0-"))
        off = Cover([])
        grown = expand_cube(Cube.from_string("11"), off, [priv])
        # growing 11 to -1 or 1- would intersect -- without containing 0-
        # (unless it grows all the way to --, which contains 0-)
        assert grown == Cube.from_string("--") or grown == Cube.from_string("11")
        if grown == Cube.from_string("--"):
            assert grown.contains(priv.start)


class TestRepair:
    def test_repair_grows_to_start(self):
        priv = PrivilegedCube(Cube.from_string("1--"), Cube.from_string("11-"))
        cube = Cube.from_string("101")
        fixed = repair_privileged(cube, Cover([]), [priv])
        assert fixed.contains(priv.start)

    def test_repair_blocked_by_off(self):
        priv = PrivilegedCube(Cube.from_string("1--"), Cube.from_string("11-"))
        off = Cover([Cube.from_string("110")])
        cube = Cube.from_string("101")
        fixed = repair_privileged(cube, off, [priv])
        assert fixed == cube  # growth would touch OFF


class TestIrredundant:
    def test_removes_redundant_product(self):
        on = [Cube.from_string("11"), Cube.from_string("10")]
        cover = Cover([Cube.from_string("1-"), Cube.from_string("11")])
        slim = irredundant(cover, on, [])
        assert len(slim) == 1
        assert Cube.from_string("1-") in slim.cubes

    def test_keeps_required_container(self):
        required = [RequiredCube(Cube.from_string("11"))]
        on = [Cube.from_string("11")]
        cover = Cover([Cube.from_string("11"), Cube.from_string("1-")])
        slim = irredundant(cover, on, required)
        assert any(product.contains(required[0].cube) for product in slim)


class TestMinimize:
    def test_simple_function(self):
        # f = x OR y over 2 vars: ON = {10, 01, 11}, OFF = {00}
        on = [Cube.from_string("10"), Cube.from_string("01"), Cube.from_string("11")]
        off = Cover([Cube.from_string("00")])
        cover = minimize(on, off)
        assert len(cover) == 2
        assert cover.literal_count() == 2  # x + y

    def test_required_cube_single_product(self):
        # required cube 1-- must live inside one product
        on = [Cube.from_string("1--")]
        off = Cover([Cube.from_string("0-0")])
        required = [RequiredCube(Cube.from_string("1--"))]
        cover = minimize(on, off, required=required)
        assert any(p.contains(Cube.from_string("1--")) for p in cover)

    def test_cover_never_touches_off(self):
        on = [Cube.from_string("110"), Cube.from_string("011")]
        off = Cover([Cube.from_string("000"), Cube.from_string("101")])
        cover = minimize(on, off)
        for product in cover:
            for off_cube in off:
                assert not product.intersects(off_cube)
