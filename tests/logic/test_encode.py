"""State encoding."""

from repro.afsm import BurstModeMachine, Edge, InputBurst, OutputBurst, Signal, SignalKind
from repro.logic.encode import _gray, encode_states


def _chain(length):
    machine = BurstModeMachine("chain")
    machine.declare_signal(Signal("a", SignalKind.GLOBAL_READY, is_input=True))
    previous = machine.initial_state
    rising = True
    for __ in range(length):
        state = machine.fresh_state()
        machine.add_transition(previous, state, InputBurst((Edge("a", rising),)), OutputBurst(()))
        previous = state
        rising = not rising
    return machine


class TestGray:
    def test_adjacent_codes_differ_by_one_bit(self):
        for i in range(31):
            assert bin(_gray(i) ^ _gray(i + 1)).count("1") == 1


class TestEncodeStates:
    def test_all_states_coded_uniquely(self):
        machine = _chain(9)
        codes, bits = encode_states(machine)
        assert len(codes) == 10
        assert len(set(codes.values())) == 10
        assert bits == 4

    def test_initial_state_all_zero(self):
        machine = _chain(5)
        codes, __ = encode_states(machine)
        assert all(bit == 0 for bit in codes[machine.initial_state])

    def test_chain_neighbors_one_bit_apart(self):
        """The DFS walk follows the chain, so Gray codes give single-bit
        state transitions along it."""
        machine = _chain(7)
        codes, __ = encode_states(machine)
        for transition in machine.transitions():
            src, dst = codes[transition.src], codes[transition.dst]
            assert sum(a != b for a, b in zip(src, dst)) == 1

    def test_single_state_machine(self):
        machine = BurstModeMachine("lonely")
        codes, bits = encode_states(machine)
        assert bits == 1
        assert codes == {"s0": (0,)}
