"""Machine -> two-level logic synthesis."""

import pytest

from repro.afsm import BurstModeMachine, Edge, InputBurst, OutputBurst, Signal, SignalKind
from repro.afsm import extract_controllers
from repro.local_transforms import optimize_local
from repro.logic import SynthesisMode, synthesize_controller, synthesize_design
from repro.logic.encode import encode_states
from repro.logic.synthesis import build_function_specs
from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg


def _toggle_machine():
    """Minimal two-state RTZ machine: z follows a."""
    machine = BurstModeMachine("toggle")
    machine.declare_signal(Signal("a", SignalKind.GLOBAL_READY, is_input=True))
    machine.declare_signal(Signal("z", SignalKind.GLOBAL_READY, is_input=False))
    s1 = machine.fresh_state()
    machine.add_transition("s0", s1, InputBurst((Edge("a", True),)), OutputBurst((Edge("z", True),)))
    machine.add_transition(s1, "s0", InputBurst((Edge("a", False),)), OutputBurst((Edge("z", False),)))
    return machine


@pytest.fixture(scope="module")
def lt_design():
    cdfg = build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    return optimize_local(design).design


class TestEncoding:
    def test_unique_codes(self, lt_design):
        machine = lt_design.controllers["ALU2"].machine
        codes, bits = encode_states(machine)
        assert len(set(codes.values())) == machine.state_count
        assert all(len(code) == bits for code in codes.values())

    def test_minimal_width(self):
        machine = _toggle_machine()
        __, bits = encode_states(machine)
        assert bits == 1


class TestFlowTable:
    def test_toggle_machine_specs(self):
        specs, variables = build_function_specs(_toggle_machine())
        assert set(specs) == {"z", "__state0"}
        assert variables == ["a", "y0"]
        z = specs["z"]
        assert z.on_cubes and z.off_cubes

    def test_specs_have_no_conflicts(self, lt_design):
        for controller in lt_design.controllers.values():
            build_function_specs(controller.machine)  # raises on conflict

    def test_toggle_synthesis(self):
        summary = synthesize_controller(_toggle_machine())
        assert summary.products >= 2
        assert summary.functions == 2
        # z = f(a, y0): each cover must be hazard-clean
        assert summary.hazard_warnings == []


class TestModes:
    def test_shared_never_larger_than_single(self, lt_design):
        machine = lt_design.controllers["ALU1"].machine
        single = synthesize_controller(machine, mode=SynthesisMode.SINGLE)
        shared = synthesize_controller(machine, mode=SynthesisMode.SHARED)
        assert shared.products <= single.products
        assert shared.literals <= single.literals

    def test_design_level_modes(self, lt_design):
        summaries = synthesize_design(lt_design, shared_for=("ALU1",))
        assert summaries["ALU1"].mode is SynthesisMode.SHARED
        assert summaries["ALU2"].mode is SynthesisMode.SINGLE

    def test_all_controllers_synthesize(self, lt_design):
        summaries = synthesize_design(lt_design)
        for fu, summary in summaries.items():
            assert summary.products > 0, fu
            assert summary.literals > 0, fu
            assert summary.covers


class TestBackAnnotation:
    def test_back_annotated_covers_still_verify(self, lt_design):
        """Extraction step 4 (early-arrival back-annotation) keeps every
        cover correct; robustness against early toggles is bought with
        a few extra products."""
        for fu in ("ALU1", "MUL2"):
            machine = lt_design.controllers[fu].machine
            plain = synthesize_controller(machine)
            robust = synthesize_controller(machine, back_annotate=True)
            assert robust.products >= plain.products  # the measured trade-off

    def test_back_annotated_products_ignore_unsampled_wires(self, lt_design):
        """A product may only depend on a global wire in states where
        some burst samples it: spot-check on MUL2."""
        from repro.afsm.signals import SignalKind

        machine = lt_design.controllers["MUL2"].machine
        summary = synthesize_controller(machine, back_annotate=True)
        assert summary.covers  # built and verified


class TestCoverCorrectness:
    def test_covers_reproduce_transitions(self, lt_design):
        """Spot-check: every cover covers its ON cubes and avoids its
        OFF cubes (re-derived independently)."""
        from repro.logic.cover import Cover

        machine = lt_design.controllers["MUL2"].machine
        specs, __ = build_function_specs(machine)
        summary = synthesize_controller(machine)
        for name, spec in specs.items():
            cover = summary.covers[name]
            on_check = Cover(list(cover))
            for cube in Cover(spec.on_cubes).drop_contained():
                assert on_check.contains_cube(cube), (name, cube)
            for product in cover:
                for off in Cover(spec.off_cubes).drop_contained():
                    assert not product.intersects(off), (name, product, off)
