"""Cube algebra."""

import pytest

from repro.errors import LogicError
from repro.logic import Cube, DASH


class TestConstruction:
    def test_from_string_roundtrip(self):
        cube = Cube.from_string("10-1")
        assert str(cube) == "10-1"
        assert cube[2] == DASH

    def test_bad_values(self):
        with pytest.raises(LogicError):
            Cube((0, 3))
        with pytest.raises(LogicError):
            Cube.from_string("10x")

    def test_immutable(self):
        cube = Cube.from_string("01")
        with pytest.raises(AttributeError):
            cube.values = (1, 1)

    def test_full(self):
        assert str(Cube.full(3)) == "---"


class TestRelations:
    def test_intersects(self):
        assert Cube.from_string("1-0").intersects(Cube.from_string("-10"))
        assert not Cube.from_string("1-0").intersects(Cube.from_string("0--"))

    def test_intersection(self):
        result = Cube.from_string("1--").intersection(Cube.from_string("-0-"))
        assert str(result) == "10-"
        assert Cube.from_string("1--").intersection(Cube.from_string("0--")) is None

    def test_contains(self):
        assert Cube.from_string("1--").contains(Cube.from_string("101"))
        assert not Cube.from_string("101").contains(Cube.from_string("1--"))
        assert Cube.from_string("1--").contains(Cube.from_string("1--"))

    def test_contains_point(self):
        assert Cube.from_string("1-0").contains_point((1, 1, 0))
        assert not Cube.from_string("1-0").contains_point((0, 1, 0))

    def test_supercube(self):
        result = Cube.from_string("101").supercube(Cube.from_string("111"))
        assert str(result) == "1-1"

    def test_distance(self):
        assert Cube.from_string("101").distance(Cube.from_string("100")) == 1
        assert Cube.from_string("1--").distance(Cube.from_string("0--")) == 1
        assert Cube.from_string("1--").distance(Cube.from_string("-0-")) == 0

    def test_width_mismatch(self):
        with pytest.raises(LogicError):
            Cube.from_string("10").intersects(Cube.from_string("100"))


class TestSharp:
    def test_disjoint_unchanged(self):
        cube = Cube.from_string("1--")
        assert cube.sharp(Cube.from_string("0--")) == [cube]

    def test_contained_vanishes(self):
        assert Cube.from_string("101").sharp(Cube.from_string("1--")) == []

    def test_partition_is_disjoint_and_complete(self):
        cube = Cube.from_string("----")
        hole = Cube.from_string("10-1")
        pieces = cube.sharp(hole)
        hole_points = set(hole.minterms())
        piece_points = [set(p.minterms()) for p in pieces]
        # pieces are pairwise disjoint
        for i, left in enumerate(piece_points):
            for right in piece_points[i + 1 :]:
                assert not (left & right)
        # pieces plus hole reconstruct the cube
        union = set().union(*piece_points) if piece_points else set()
        assert union | hole_points == set(cube.minterms())
        assert not (union & hole_points)

    def test_minterm_count(self):
        assert Cube.from_string("1--0").minterm_count() == 4
        assert len(list(Cube.from_string("1--0").minterms())) == 4

    def test_literal_count(self):
        assert Cube.from_string("1--0").literal_count == 2
