"""Hazard-freedom predicates."""

import pytest

from repro.errors import HazardError
from repro.logic import Cover, Cube
from repro.logic.hazards import (
    PrivilegedCube,
    RequiredCube,
    assert_hazard_free,
    check_hazard_free,
)


class TestRequired:
    def test_satisfied_by_single_product(self):
        req = RequiredCube(Cube.from_string("1-0"))
        assert req.satisfied_by(Cover([Cube.from_string("1--")]))

    def test_split_coverage_insufficient(self):
        """Union coverage is NOT enough: the cube must sit inside one
        product or the OR gate may glitch mid-burst."""
        req = RequiredCube(Cube.from_string("1--"))
        split = Cover([Cube.from_string("1-0"), Cube.from_string("1-1")])
        assert not req.satisfied_by(split)
        problems = check_hazard_free(split, [req], [], Cover([]))
        assert any("required cube" in p for p in problems)


class TestPrivileged:
    def test_illegal_intersection(self):
        priv = PrivilegedCube(Cube.from_string("1--"), Cube.from_string("10-"))
        assert priv.illegally_intersected_by(Cube.from_string("11-"))
        assert not priv.illegally_intersected_by(Cube.from_string("10-"))
        assert not priv.illegally_intersected_by(Cube.from_string("0--"))

    def test_containing_start_is_legal(self):
        priv = PrivilegedCube(Cube.from_string("1--"), Cube.from_string("10-"))
        assert not priv.illegally_intersected_by(Cube.from_string("1--"))


class TestChecker:
    def test_off_set_violation(self):
        cover = Cover([Cube.from_string("1-")])
        problems = check_hazard_free(cover, [], [], Cover([Cube.from_string("11")]))
        assert any("OFF-set" in p for p in problems)

    def test_assert_raises(self):
        with pytest.raises(HazardError):
            assert_hazard_free(
                Cover([Cube.from_string("1-")]), [], [], Cover([Cube.from_string("11")])
            )

    def test_clean_cover_passes(self):
        cover = Cover([Cube.from_string("1-")])
        assert check_hazard_free(
            cover,
            [RequiredCube(Cube.from_string("11"))],
            [PrivilegedCube(Cube.from_string("1-"), Cube.from_string("10"))],
            Cover([Cube.from_string("0-")]),
        ) == []
