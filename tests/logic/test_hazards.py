"""Hazard-freedom predicates."""

import pytest

from repro.errors import HazardError
from repro.logic import Cover, Cube
from repro.logic.hazards import (
    PrivilegedCube,
    RequiredCube,
    assert_hazard_free,
    check_hazard_free,
)


class TestRequired:
    def test_satisfied_by_single_product(self):
        req = RequiredCube(Cube.from_string("1-0"))
        assert req.satisfied_by(Cover([Cube.from_string("1--")]))

    def test_split_coverage_insufficient(self):
        """Union coverage is NOT enough: the cube must sit inside one
        product or the OR gate may glitch mid-burst."""
        req = RequiredCube(Cube.from_string("1--"))
        split = Cover([Cube.from_string("1-0"), Cube.from_string("1-1")])
        assert not req.satisfied_by(split)
        problems = check_hazard_free(split, [req], [], Cover([]))
        assert any("required cube" in p for p in problems)


class TestPrivileged:
    def test_illegal_intersection(self):
        priv = PrivilegedCube(Cube.from_string("1--"), Cube.from_string("10-"))
        assert priv.illegally_intersected_by(Cube.from_string("11-"))
        assert not priv.illegally_intersected_by(Cube.from_string("10-"))
        assert not priv.illegally_intersected_by(Cube.from_string("0--"))

    def test_containing_start_is_legal(self):
        priv = PrivilegedCube(Cube.from_string("1--"), Cube.from_string("10-"))
        assert not priv.illegally_intersected_by(Cube.from_string("1--"))


class TestChecker:
    def test_off_set_violation(self):
        cover = Cover([Cube.from_string("1-")])
        problems = check_hazard_free(cover, [], [], Cover([Cube.from_string("11")]))
        assert any("OFF-set" in p for p in problems)

    def test_assert_raises(self):
        with pytest.raises(HazardError):
            assert_hazard_free(
                Cover([Cube.from_string("1-")]), [], [], Cover([Cube.from_string("11")])
            )

    def test_clean_cover_passes(self):
        cover = Cover([Cube.from_string("1-")])
        assert check_hazard_free(
            cover,
            [RequiredCube(Cube.from_string("11"))],
            [PrivilegedCube(Cube.from_string("1-"), Cube.from_string("10"))],
            Cover([Cube.from_string("0-")]),
        ) == []


class TestAssertErrorPaths:
    def test_clean_cover_does_not_raise(self):
        assert_hazard_free(
            Cover([Cube.from_string("1-")]),
            [RequiredCube(Cube.from_string("11"))],
            [],
            Cover([Cube.from_string("0-")]),
        )

    def test_message_names_each_violation_kind(self):
        split = Cover([Cube.from_string("1-0"), Cube.from_string("11-")])
        with pytest.raises(HazardError) as excinfo:
            assert_hazard_free(
                split,
                [RequiredCube(Cube.from_string("1--"))],
                [PrivilegedCube(Cube.from_string("1--"), Cube.from_string("100"))],
                Cover([Cube.from_string("100")]),
            )
        message = str(excinfo.value)
        assert "required cube" in message
        assert "illegally intersects privileged cube" in message
        assert "covers OFF-set cube" in message

    def test_message_truncates_to_five_problems(self):
        """An off-set hit per (product, off) pair: 3 products x 3 OFF
        cubes = 9 problems, but the raised message carries only 5."""
        products = [Cube.from_string(p) for p in ("11-", "1-1", "-11")]
        off = Cover([Cube.from_string(p) for p in ("111", "11-", "-11")])
        cover = Cover(products)
        problems = check_hazard_free(cover, [], [], off)
        assert len(problems) > 5
        with pytest.raises(HazardError) as excinfo:
            assert_hazard_free(cover, [], [], off)
        message = str(excinfo.value)
        assert message == "; ".join(problems[:5])
        assert problems[5] not in message
