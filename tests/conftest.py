"""Shared fixtures: the three workloads at each optimization level."""

from __future__ import annotations

import pytest

from repro.transforms import optimize_global
from repro.workloads import build_diffeq_cdfg, build_ewf_cdfg, build_gcd_cdfg


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the checked-in golden reports (tests/golden/reports/) "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def diffeq():
    return build_diffeq_cdfg()


@pytest.fixture(scope="session")
def gcd():
    return build_gcd_cdfg()


@pytest.fixture(scope="session")
def ewf():
    return build_ewf_cdfg()


@pytest.fixture(scope="session")
def diffeq_optimized(diffeq):
    """DIFFEQ after the full GT1..GT5 script (graph is never mutated by
    consumers: treat as read-only)."""
    return optimize_global(diffeq)


@pytest.fixture(scope="session")
def gcd_optimized(gcd):
    return optimize_global(gcd)


@pytest.fixture(scope="session")
def ewf_optimized(ewf):
    return optimize_global(ewf)
