"""Generators for the golden-report regression suite.

Each function regenerates one checked-in report byte-for-byte: the
same code path the CLI uses, rendered through the canonical
``repro-report/v1`` envelope.  Wall-clock fields (the fuzzer's
``duration``) are zeroed so the bytes depend only on the flow's
semantics, never on machine speed.

Regenerate the checked-in files after an intentional behavior change
with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

from __future__ import annotations

from repro.explore import explore_design_space
from repro.resilience import run_campaign
from repro.verify import fuzz_workload, prove_workload
from repro.verify.schema import canonical_json, report_envelope
from repro.workloads import WORKLOADS

#: pinned campaign sizes — small enough to run in CI on every push,
#: large enough to exercise shrinking, faults and the full GT/LT grid
VERIFY_RUNS = 3
FAULT_TRIALS = 4
SEED = 0


def verify_text(workload: str) -> str:
    report = fuzz_workload(workload, runs=VERIFY_RUNS, seed=SEED)
    payload = report.to_dict()
    payload["duration"] = 0.0
    return canonical_json(report_envelope("verify", [payload]))


def faults_text(workload: str) -> str:
    report = run_campaign(workload, seed=SEED, trials=FAULT_TRIALS)
    return canonical_json(report_envelope("faults", [report.to_dict()]))


def explore_text(workload: str) -> str:
    result = explore_design_space(WORKLOADS[workload](), incremental=False)
    return canonical_json(
        report_envelope("explore", [point.to_dict() for point in result.points])
    )


def flow_proofs_text(workload: str) -> str:
    report = prove_workload(workload, minimize=True)
    return canonical_json(report_envelope("flow-proofs", [report.to_dict()]))


GENERATORS = {
    "verify_diffeq": lambda: verify_text("diffeq"),
    "verify_fir": lambda: verify_text("fir"),
    "faults_diffeq": lambda: faults_text("diffeq"),
    "faults_fir": lambda: faults_text("fir"),
    "explore_diffeq": lambda: explore_text("diffeq"),
    "explore_fir": lambda: explore_text("fir"),
    "flow_proofs_diffeq": lambda: flow_proofs_text("diffeq"),
    "flow_proofs_fir": lambda: flow_proofs_text("fir"),
}
