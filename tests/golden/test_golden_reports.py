"""Byte-exact golden-report regression suite.

Every verify-family report the CLI can emit is pinned as a checked-in
canonical JSON file.  Any semantic drift in the flow — a transform
firing differently, a proof obligation changing, a conformance stamp
flipping — shows up as a byte diff here before it shows up anywhere
else.

After an *intentional* change, refresh the files and review the diff::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.verify.schema import load_envelope

from tests.golden.generate import GENERATORS

GOLDEN_DIR = Path(__file__).parent / "reports"


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_report_matches_golden(name, update_golden):
    path = GOLDEN_DIR / f"{name}.json"
    text = GENERATORS[name]()
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden report {path.name}; generate it with "
        "`python -m pytest tests/golden --update-golden`"
    )
    golden = path.read_text(encoding="utf-8")
    assert text == golden, (
        f"{path.name} drifted from the checked-in golden bytes — if the "
        "change is intentional, rerun with --update-golden and review "
        "the diff"
    )


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_golden_files_are_canonical_envelopes(name):
    """The checked-in bytes themselves parse as valid v1 envelopes."""
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.skip("golden file not generated yet")
    text = path.read_text(encoding="utf-8")
    envelope = load_envelope(text)
    assert envelope["kind"] in name.replace("flow_proofs", "flow-proofs")
    assert json.dumps(envelope, indent=2, sort_keys=True) + "\n" == text


def test_golden_reports_are_healthy():
    """The pinned reports describe a *passing* flow: conformant fuzz
    campaigns, healthy fault campaigns, fully proved certificates."""
    if not GOLDEN_DIR.exists():
        pytest.skip("golden files not generated yet")
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        envelope = load_envelope(str(path))
        for report in envelope["reports"]:
            if envelope["kind"] == "verify":
                assert report["failures"] == [], path.name
            elif envelope["kind"] == "faults":
                assert report["baseline_conformant"], path.name
            elif envelope["kind"] == "flow-proofs":
                assert report["proved"], path.name
            elif envelope["kind"] == "explore":
                assert report["status"] == "ok", path.name
