"""Exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.RtlSyntaxError("x", "reason"),
            errors.CdfgError("x"),
            errors.BlockStructureError("x"),
            errors.ValidationError("x"),
            errors.TransformError("GT1", "reason"),
            errors.TimingError("x"),
            errors.ExtractionError("x"),
            errors.BurstModeError("x"),
            errors.LogicError("x"),
            errors.HazardError("x"),
            errors.SimulationError("x"),
            errors.ChannelSafetyError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert isinstance(exception, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.BlockStructureError, errors.CdfgError)
        assert issubclass(errors.ValidationError, errors.CdfgError)
        assert issubclass(errors.HazardError, errors.LogicError)
        assert issubclass(errors.ChannelSafetyError, errors.SimulationError)

    def test_rtl_error_message(self):
        error = errors.RtlSyntaxError("A + B", "no assignment")
        assert "A + B" in str(error)
        assert error.text == "A + B"
        assert error.reason == "no assignment"

    def test_transform_error_message(self):
        error = errors.TransformError("GT3", "no witness")
        assert str(error) == "GT3: no witness"


class TestCatchability:
    def test_single_except_clause_suffices(self):
        """Library failures are catchable with one except ReproError."""
        from repro.rtl import parse_statement

        with pytest.raises(errors.ReproError):
            parse_statement("not a statement !!!")
