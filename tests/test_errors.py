"""Exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.RtlSyntaxError("x", "reason"),
            errors.CdfgError("x"),
            errors.BlockStructureError("x"),
            errors.ValidationError("x"),
            errors.TransformError("GT1", "reason"),
            errors.TimingError("x"),
            errors.ExtractionError("x"),
            errors.BurstModeError("x"),
            errors.LogicError("x"),
            errors.HazardError("x"),
            errors.SimulationError("x"),
            errors.ChannelSafetyError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert isinstance(exception, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.BlockStructureError, errors.CdfgError)
        assert issubclass(errors.ValidationError, errors.CdfgError)
        assert issubclass(errors.HazardError, errors.LogicError)
        assert issubclass(errors.ChannelSafetyError, errors.SimulationError)

    def test_rtl_error_message(self):
        error = errors.RtlSyntaxError("A + B", "no assignment")
        assert "A + B" in str(error)
        assert error.text == "A + B"
        assert error.reason == "no assignment"

    def test_transform_error_message(self):
        error = errors.TransformError("GT3", "no witness")
        assert str(error) == "GT3: no witness"


class TestCatchability:
    def test_single_except_clause_suffices(self):
        """Library failures are catchable with one except ReproError."""
        from repro.rtl import parse_statement

        with pytest.raises(errors.ReproError):
            parse_statement("not a statement !!!")


class TestExitTaxonomy:
    """The shared exit-code contract (CLI sweeps + the job server)."""

    def test_codes_are_the_documented_constants(self):
        assert errors.EXIT_CODES == {"ok": 0, "issues": 1, "fatal": 2,
                                     "interrupted": 130}

    def test_ok_when_nothing_went_wrong(self):
        assert errors.exit_class(total=10) == "ok"
        assert errors.sweep_exit_code(total=10) == errors.EXIT_OK

    def test_partial_failures_alone_stay_ok(self):
        """The historical explore contract: quarantined points are
        reported but do not fail the sweep."""
        assert errors.exit_class(total=10, failed=3) == "ok"

    def test_issues_when_units_report_problems(self):
        assert errors.exit_class(total=10, issues=1) == "issues"
        assert errors.sweep_exit_code(issues=2) == errors.EXIT_ISSUES

    def test_fatal_when_every_unit_failed(self):
        assert errors.exit_class(total=5, failed=5) == "fatal"
        assert errors.sweep_exit_code(total=5, failed=5) == errors.EXIT_FATAL

    def test_interruption_dominates_everything(self):
        assert errors.exit_class(interrupted=True, total=5, failed=5,
                                 issues=5) == "interrupted"
        assert errors.sweep_exit_code(interrupted=True) == errors.EXIT_INTERRUPTED

    def test_job_error_is_a_repro_error(self):
        assert issubclass(errors.JobError, errors.ReproError)

    def test_serve_failures_map_into_the_same_table(self):
        """Every exit_class the serve layer stamps is a key in EXIT_CODES."""
        from repro.serve.jobs import WorkerKilled, classify_failure
        from repro.resilience.injection import PointTimeout

        for exc in (WorkerKilled("x"), PointTimeout("x"),
                    errors.JobError("x"), errors.SimulationError("x"),
                    RuntimeError("x")):
            __, exit_class, __ = classify_failure(exc)
            assert exit_class in errors.EXIT_CODES
