"""Span tracing: nesting, attributes and the perf bridge."""

import pytest

from repro import perf
from repro.obs.spans import (
    current_span,
    format_spans,
    reset_spans,
    set_attribute,
    span,
    spans,
    spans_to_dicts,
)


@pytest.fixture(autouse=True)
def clean_registry():
    reset_spans()
    perf.reset_timings()
    yield
    reset_spans()
    perf.reset_timings()


class TestSpans:
    def test_nesting_depths(self):
        with span("outer"):
            with span("inner"):
                with span("leaf"):
                    pass
            with span("sibling"):
                pass
        recorded = spans()
        assert [s.name for s in recorded] == ["outer", "inner", "leaf", "sibling"]
        assert [s.depth for s in recorded] == [0, 1, 2, 1]

    def test_durations_filled_on_exit(self):
        with span("timed") as entry:
            assert entry.duration == 0.0
        assert entry.duration > 0.0
        assert entry.duration == spans()[0].duration

    def test_attributes_at_entry_and_via_setter(self):
        with span("work", workload="gcd"):
            set_attribute("applied", True)
        recorded = spans()[0]
        assert recorded.attributes == {"workload": "gcd", "applied": True}

    def test_current_span(self):
        assert current_span() is None
        with span("open") as entry:
            assert current_span() is entry
        assert current_span() is None

    def test_set_attribute_outside_span_is_noop(self):
        set_attribute("ignored", 1)
        assert spans() == []

    def test_perf_bridge_keeps_timings_working(self):
        with span("global/GT1"):
            pass
        with span("global/GT1"):
            pass
        timings = perf.section_timings()
        assert timings["global/GT1"].calls == 2
        assert timings["global/GT1"].total > 0.0

    def test_exception_still_records(self):
        with pytest.raises(RuntimeError):
            with span("fails"):
                raise RuntimeError("boom")
        assert spans()[0].duration > 0.0
        assert current_span() is None

    def test_format_and_dicts(self):
        with span("outer", workload="fir"):
            with span("inner"):
                pass
        text = format_spans()
        assert "outer" in text and "workload=fir" in text
        assert text.splitlines()[1].startswith("  inner")
        dicts = spans_to_dicts()
        assert dicts[0]["name"] == "outer"
        assert dicts[1]["depth"] == 1

    def test_synthesis_flow_produces_span_tree(self, gcd):
        from repro.afsm.extract import extract_controllers
        from repro.local_transforms import optimize_local
        from repro.transforms import optimize_global

        optimized = optimize_global(gcd)
        design = extract_controllers(optimized.cdfg, optimized.plan)
        optimize_local(design)
        names = [s.name for s in spans()]
        assert "optimize_global" in names
        assert "global/GT1" in names
        assert "extract_controllers" in names
        assert "optimize_local" in names
        assert any(name.startswith("local/LT") for name in names)
        # pass spans nest under their script span
        outer = names.index("optimize_global")
        assert spans()[outer].depth == 0
        assert spans()[names.index("global/GT1")].depth == 1
