"""Transform provenance records and their JSONL round-trip."""

import io

import pytest

from repro.afsm.extract import extract_controllers
from repro.local_transforms import optimize_local
from repro.obs.provenance import (
    ProvenanceRecord,
    from_jsonl,
    read_jsonl,
    to_jsonl,
    write_jsonl,
)
from repro.transforms import optimize_global

GLOBAL_PASSES = ("GT1", "GT2", "GT3", "GT4", "GT5")
LOCAL_PASSES = ("LT1", "LT2", "LT3", "LT4", "LT5")


@pytest.fixture(scope="module")
def diffeq_flow(request):
    cdfg = request.getfixturevalue("diffeq")
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    local = optimize_local(design)
    return optimized, local


class TestRecords:
    def test_every_global_pass_emits_records(self, diffeq_flow):
        optimized, __ = diffeq_flow
        by_pass = {name: 0 for name in GLOBAL_PASSES}
        for record in optimized.provenance:
            by_pass[record.transform] += 1
        for name in GLOBAL_PASSES:
            assert by_pass[name] >= 1, f"{name} emitted no provenance"

    def test_every_local_pass_emits_records(self, diffeq_flow):
        __, local = diffeq_flow
        by_pass = {name: 0 for name in LOCAL_PASSES}
        for record in local.provenance:
            by_pass[record.transform] += 1
        for name in LOCAL_PASSES:
            assert by_pass[name] >= 1, f"{name} emitted no provenance"

    def test_gt2_records_carry_dominating_path(self, diffeq_flow):
        optimized, __ = diffeq_flow
        removed = [
            record
            for record in optimized.provenance
            if record.transform == "GT2" and record.kind == "dominated-arc-removed"
        ]
        assert removed
        for record in removed:
            path = record.detail["dominating_path"]
            assert len(path) >= 3  # src, at least one intermediate, dst

    def test_gt3_records_carry_witness(self, diffeq_flow):
        optimized, __ = diffeq_flow
        removed = [
            record
            for record in optimized.provenance
            if record.transform == "GT3" and record.kind == "timed-arc-removed"
        ]
        assert removed
        for record in removed:
            assert " -> " in record.detail["witness"]

    def test_local_records_name_their_machine(self, diffeq_flow):
        __, local = diffeq_flow
        for record in local.provenance:
            assert record.detail["machine"]

    def test_pass_summary_present_even_for_noop(self, gcd):
        # GT1 is a no-op on a workload whose loop cannot overlap further
        optimized = optimize_global(gcd, enabled=("GT4",))
        summaries = [r for r in optimized.provenance if r.kind == "pass-summary"]
        assert len(summaries) == 1
        assert summaries[0].detail["applied"] in (True, False)


class TestRoundTrip:
    def test_jsonl_round_trip(self, diffeq_flow):
        optimized, local = diffeq_flow
        records = optimized.provenance + local.provenance
        assert records
        restored = from_jsonl(to_jsonl(records))
        assert restored == records

    def test_write_and_read_path(self, diffeq_flow, tmp_path):
        optimized, __ = diffeq_flow
        target = tmp_path / "provenance.jsonl"
        count = optimized.export_provenance(str(target))
        assert count == len(optimized.provenance)
        assert read_jsonl(str(target)) == optimized.provenance

    def test_write_to_stream(self, diffeq_flow):
        __, local = diffeq_flow
        buffer = io.StringIO()
        count = write_jsonl(local.provenance, buffer)
        assert count == len(local.provenance)
        assert from_jsonl(buffer.getvalue()) == local.provenance

    def test_record_shape(self):
        record = ProvenanceRecord("GT9", "arc-removed", "a -> b", {"why": "test"})
        data = record.to_dict()
        assert data == {
            "transform": "GT9",
            "kind": "arc-removed",
            "subject": "a -> b",
            "detail": {"why": "test"},
        }
        assert ProvenanceRecord.from_dict(data) == record
