"""Causal event tracing and exact critical-path decomposition."""

import pytest

from repro import synthesize
from repro.obs.causal import (
    EventTrace,
    bottleneck_label,
    critical_path,
    path_delay_sum,
    slack_by_label,
)
from repro.sim.kernel import EventKernel
from repro.sim.seeding import NOMINAL
from repro.sim.system import simulate_system
from repro.sim.token_sim import simulate_tokens
from repro.workloads import WORKLOADS


class TestKernelTracing:
    def test_parent_is_the_enabling_event(self):
        trace = EventTrace()
        kernel = EventKernel(trace=trace)
        order = []

        def leaf():
            order.append("leaf")

        def root():
            order.append("root")
            kernel.schedule(2.0, leaf, label="leaf")

        kernel.schedule(1.0, root, label="root")
        kernel.run()
        assert order == ["root", "leaf"]
        chain = trace.chain()
        assert [event.label for event in chain] == ["root", "leaf"]
        assert chain[1].parent == chain[0].uid
        assert chain[1].time == 3.0

    def test_untraced_kernel_records_nothing(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None, label="ignored")
        kernel.run()
        assert kernel.trace is None

    def test_critical_path_filters_zero_delay_exactly(self):
        trace = EventTrace()
        kernel = EventKernel(trace=trace)

        def step2():
            pass

        def step1():
            kernel.schedule(0.0, lambda: kernel.schedule(0.7, step2, label="b"), label="poke")

        kernel.schedule(0.3, step1, label="a")
        kernel.run()
        full = critical_path(trace, include_zero=True)
        filtered = critical_path(trace)
        assert len(full) == 3 and len(filtered) == 2
        assert path_delay_sum(full) == path_delay_sum(filtered) == 1.0


@pytest.mark.parametrize("workload", ["diffeq", "fir"])
class TestNominalExactness:
    """In NOMINAL mode the critical path must reproduce the makespan
    bit-for-bit: same delays, same fold-left additions."""

    def test_token_sim_path_sums_to_makespan(self, workload):
        cdfg = WORKLOADS[workload]()
        result = simulate_tokens(cdfg, seed=NOMINAL, trace=EventTrace())
        segments = critical_path(result.trace, end_uid=result.end_event)
        assert segments
        assert path_delay_sum(segments) == result.end_time

    def test_system_sim_path_sums_to_makespan(self, workload):
        design = synthesize(workload)
        result = simulate_system(design, seed=NOMINAL, trace=EventTrace())
        segments = critical_path(result.trace)
        assert segments
        assert path_delay_sum(segments) == result.end_time

    def test_seeded_run_is_also_exact(self, workload):
        design = synthesize(workload)
        result = simulate_system(design, seed=7, trace=EventTrace())
        segments = critical_path(result.trace)
        assert path_delay_sum(segments) == result.end_time


class TestAnalysis:
    @pytest.fixture(scope="class")
    def traced_run(self):
        design = synthesize("diffeq")
        result = simulate_system(design, seed=NOMINAL, trace=EventTrace())
        return result

    def test_segments_are_contiguous(self, traced_run):
        segments = critical_path(traced_run.trace, include_zero=True)
        for previous, current in zip(segments, segments[1:]):
            assert current.start == previous.end

    def test_critical_labels_have_zero_slack(self, traced_run):
        segments = critical_path(traced_run.trace)
        slack = slack_by_label(traced_run.trace, end_time=traced_run.end_time)
        for segment in segments:
            assert slack[segment.label] == 0.0

    def test_slack_is_nonnegative_and_bounded(self, traced_run):
        slack = slack_by_label(traced_run.trace, end_time=traced_run.end_time)
        assert slack
        for value in slack.values():
            assert 0.0 <= value <= traced_run.end_time

    def test_bottleneck_groups_labels(self, traced_run):
        segments = critical_path(traced_run.trace)
        group = bottleneck_label(segments)
        # diffeq's inner product chain is multiplier-bound
        assert group.startswith(("dp:", "ctrl:", "poke:"))
        assert bottleneck_label([]) == ""

    def test_event_dump_is_execution_ordered(self, traced_run):
        dumped = traced_run.trace.to_dicts()
        assert [entry["order"] for entry in dumped] == list(range(len(dumped)))
        labels = {entry["label"] for entry in dumped if entry["label"]}
        assert any(label.startswith("ctrl:") for label in labels)
        assert any(label.startswith("dp:") for label in labels)


class TestIncrementalExecutionOrder:
    """``executed()``/``last_event()`` read an incrementally maintained
    list; it must match a from-scratch sort of the event dict."""

    def test_executed_matches_resorted_events(self):
        design = synthesize("diffeq")
        result = simulate_system(design, seed=3, trace=EventTrace())
        trace = result.trace
        incremental = trace.executed()
        resorted = sorted(
            (e for e in trace.events.values() if e.order >= 0),
            key=lambda e: e.order,
        )
        assert incremental == resorted
        assert [e.order for e in incremental] == list(range(len(incremental)))

    def test_last_event_is_the_max_order_event(self):
        trace = EventTrace()
        kernel = EventKernel(trace=trace)
        kernel.schedule(1.0, lambda: None, label="a")
        kernel.schedule(2.0, lambda: None, label="b")
        kernel.run()
        assert trace.last_event().label == "b"
        assert trace.last_event() is trace.executed()[-1]

    def test_scheduled_but_never_executed_is_excluded(self):
        trace = EventTrace()
        trace.on_schedule(0, 0.0, 1.0, "ran")
        trace.on_schedule(1, 0.0, 2.0, "pending")
        trace.on_execute(0)
        assert [event.label for event in trace.executed()] == ["ran"]
        assert trace.last_event().label == "ran"

    def test_empty_trace(self):
        trace = EventTrace()
        assert trace.executed() == []
        assert trace.last_event() is None
