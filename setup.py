"""Shim for legacy ``pip install -e .`` flows.

All metadata — including the runtime dependencies (networkx, and numpy
for the batched max-plus simulation engine) — lives in pyproject.toml.
"""

from setuptools import setup

setup()
